package core

import (
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/lra"
	"medea/internal/resource"
	"medea/internal/sim"
	"medea/internal/taskched"
)

// TestConfigSentinels: the zero value of every knob selects its documented
// default; negative values disable the feature instead of silently
// becoming the default (the MaxRetries: 0 ambiguity).
func TestConfigSentinels(t *testing.T) {
	if got := (Config{}).maxRetries(); got != 3 {
		t.Errorf("maxRetries zero = %d, want 3", got)
	}
	if got := (Config{MaxRetries: -1}).maxRetries(); got != 0 {
		t.Errorf("maxRetries -1 = %d, want 0", got)
	}
	if got := (Config{MaxRetries: 7}).maxRetries(); got != 7 {
		t.Errorf("maxRetries 7 = %d", got)
	}
	if got := (Config{}).repairMaxRetries(); got != 5 {
		t.Errorf("repairMaxRetries zero = %d, want 5", got)
	}
	if got := (Config{RepairMaxRetries: -1}).repairMaxRetries(); got != 0 {
		t.Errorf("repairMaxRetries -1 = %d, want 0", got)
	}
	if got := (Config{Interval: 10 * time.Second}).repairBackoff(); got != 10*time.Second {
		t.Errorf("repairBackoff zero = %v, want Interval", got)
	}
	if got := (Config{RepairBackoff: time.Second}).repairBackoffMax(); got != 8*time.Second {
		t.Errorf("repairBackoffMax zero = %v, want 8×backoff", got)
	}
	if got := (Config{}).repairFallbackAfter(); got != 2 {
		t.Errorf("repairFallbackAfter zero = %d, want 2", got)
	}
	if got := (Config{RepairFallbackAfter: -1}).repairFallbackAfter(); got != -1 {
		t.Errorf("repairFallbackAfter -1 = %d, want -1 (never)", got)
	}
}

// TestNoRetriesSentinel: MaxRetries < 0 really means no retries — an
// unplaceable LRA is rejected on its first cycle.
func TestNoRetriesSentinel(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{MaxRetries: -1})
	_ = m.SubmitLRA(app("huge", 1000), t0)
	stats := m.RunCycle(t0)
	if stats.Rejected != 1 || stats.Requeued != 0 {
		t.Errorf("stats = %+v, want immediate rejection", stats)
	}
}

// TestTickAnchoredSchedule: cycle deadlines advance along the schedule
// established by the first tick, so a late tick does not push subsequent
// deadlines out (call-time anchoring would drift under load).
func TestTickAnchoredSchedule(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{Interval: 10 * time.Second})
	_ = m.SubmitLRA(app("a", 1), t0)
	if _, ran := m.Tick(t0); !ran {
		t.Fatal("first tick should run")
	}
	_ = m.SubmitLRA(app("b", 1), t0.Add(20*time.Second))
	// The caller is 5s late for the t0+20s deadline.
	if _, ran := m.Tick(t0.Add(25 * time.Second)); !ran {
		t.Fatal("late tick should run")
	}
	// The next deadline is t0+30s on the anchored schedule; call-time
	// anchoring would have moved it to t0+35s.
	_ = m.SubmitLRA(app("c", 1), t0.Add(26*time.Second))
	if _, ran := m.Tick(t0.Add(31 * time.Second)); !ran {
		t.Error("deadline drifted to call time + interval")
	}
}

// TestTickIdleDoesNotConsumeSlot: a tick with nothing to do leaves the
// deadline untouched, so work submitted right after is scheduled at the
// next tick instead of a full interval later.
func TestTickIdleDoesNotConsumeSlot(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{Interval: 10 * time.Second})
	if _, ran := m.Tick(t0); ran {
		t.Fatal("idle tick ran a cycle")
	}
	_ = m.SubmitLRA(app("a", 1), t0.Add(time.Second))
	if _, ran := m.Tick(t0.Add(2 * time.Second)); !ran {
		t.Error("idle tick consumed the cycle slot")
	}
}

// TestFailNodeTriggersRepair: failing a node hosting LRA containers
// degrades the LRA, and the next cycle restores it to full strength with
// the original container identities.
func TestFailNodeTriggersRepair(t *testing.T) {
	m := newMedea(lra.NewILP(), Config{})
	_ = m.SubmitLRA(app("a1", 4, "hb"), t0)
	m.RunCycle(t0)
	before, _ := m.Deployed("a1")
	node, ok := m.Cluster.ContainerNode(before[0])
	if !ok {
		t.Fatal("container has no node")
	}
	lost := 0
	for _, id := range before {
		if n, _ := m.Cluster.ContainerNode(id); n == node {
			lost++
		}
	}

	t1 := t0.Add(time.Minute)
	evs := m.FailNode(node, t1)
	if len(evs) != lost {
		t.Fatalf("evictions = %d, want %d", len(evs), lost)
	}
	if m.FailNode(node, t1) != nil {
		t.Error("double fail evicted again")
	}
	if got := m.DegradedLRAs(); len(got) != 1 || got[0] != "a1" {
		t.Fatalf("DegradedLRAs = %v", got)
	}
	if got := m.PendingRepairs(); got != lost {
		t.Fatalf("PendingRepairs = %d, want %d", got, lost)
	}

	t2 := t1.Add(2 * time.Second)
	stats := m.RunCycle(t2)
	if stats.Repaired != lost {
		t.Fatalf("stats = %+v, want %d repaired", stats, lost)
	}
	after, _ := m.Deployed("a1")
	if len(after) != 4 {
		t.Fatalf("deployed = %d containers, want 4", len(after))
	}
	// Container identity is stable across failures.
	set := map[cluster.ContainerID]bool{}
	for _, id := range after {
		set[id] = true
	}
	for _, id := range before {
		if !set[id] {
			t.Errorf("container %s lost its identity across repair", id)
		}
	}
	if len(m.DegradedLRAs()) != 0 || m.PendingRepairs() != 0 {
		t.Error("still degraded after repair")
	}
	if m.Recovery.NodeFailures != 1 || m.Recovery.Evictions != lost || m.Recovery.RepairsPlaced != lost {
		t.Errorf("recovery stats = %+v", m.Recovery)
	}
	if mttr := m.Recovery.MTTR(); mttr < 2*time.Second {
		t.Errorf("MTTR = %v, want >= eviction-to-repair gap of 2s", mttr)
	}
	if d := m.Recovery.DegradedTime["a1"]; d < 2*time.Second {
		t.Errorf("degraded time = %v", d)
	}
}

// TestDrainRelocatesLRAsKeepsTasks: draining moves LRA containers through
// the repair pipeline but leaves task containers running in place.
func TestDrainRelocatesLRAsKeepsTasks(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	_ = m.SubmitLRA(app("a1", 2, "hb"), t0)
	m.RunCycle(t0)
	ids, _ := m.Deployed("a1")
	node, _ := m.Cluster.ContainerNode(ids[0])
	// Park a task container on the same node.
	_ = m.SubmitTasks("job", "default", t0, taskched.TaskRequest{Count: 1, Demand: resource.New(1024, 1)})
	allocs := m.Tasks.NodeHeartbeat(node, t0)
	if len(allocs) != 1 {
		t.Fatalf("task allocs = %d", len(allocs))
	}

	t1 := t0.Add(time.Minute)
	evs := m.DrainNode(node, t1)
	if len(evs) == 0 {
		t.Fatal("drain relocated nothing")
	}
	for _, ev := range evs {
		if ev.Container == allocs[0].Container {
			t.Error("drain evicted a task container")
		}
	}
	if n, ok := m.Cluster.ContainerNode(allocs[0].Container); !ok || n != node {
		t.Error("task container did not keep running on the draining node")
	}

	m.RunCycle(t1.Add(time.Second))
	after, _ := m.Deployed("a1")
	if len(after) != 2 {
		t.Fatalf("deployed = %d, want 2", len(after))
	}
	for _, id := range after {
		if n, _ := m.Cluster.ContainerNode(id); n == node {
			t.Errorf("repair placed %s back on the draining node", id)
		}
	}
	if m.Recovery.NodeDrains != 1 {
		t.Errorf("NodeDrains = %d", m.Recovery.NodeDrains)
	}
}

// drainedPair builds a 2-node cluster where LRA "a" fully occupies node 0
// (node 1 is blocked by a task filler), then fails node 0. Returns the
// Medea and the filler's release handle.
func drainedPair(t *testing.T, cfg Config) (*Medea, func()) {
	t.Helper()
	c := cluster.Grid(2, 1, resource.New(4096, 4))
	m := New(c, lra.NewSerial(), cfg)
	_ = m.Tasks.Submit("filler", "default", t0, taskched.TaskRequest{Count: 1, Demand: resource.New(4096, 4)})
	if got := m.Tasks.NodeHeartbeat(1, t0); len(got) != 1 {
		t.Fatal("filler did not land on node 1")
	}
	_ = m.SubmitLRA(app("a", 2), t0)
	if stats := m.RunCycle(t0); stats.Placed != 1 {
		t.Fatalf("LRA not placed: %+v", stats)
	}
	release := func() {
		if err := m.Tasks.ReleaseTask("filler#t1", "default", resource.New(4096, 4)); err != nil {
			t.Fatal(err)
		}
	}
	return m, release
}

// TestRepairBackoffAndAbandon: repair attempts back off exponentially and
// the request is dropped after the retry budget, with the degraded time
// accounted.
func TestRepairBackoffAndAbandon(t *testing.T) {
	cfg := Config{
		Interval: time.Second, RepairMaxRetries: 2, RepairBackoff: time.Second,
		RepairFallbackAfter: -1,
	}
	m, _ := drainedPair(t, cfg)
	t1 := t0.Add(time.Minute)
	if evs := m.FailNode(0, t1); len(evs) != 2 {
		t.Fatalf("evictions = %d, want 2", len(evs))
	}
	// The deterministic backoff schedule: ~1s after attempt 1, ~2s after
	// attempt 2 (exponential base plus per-app jitter).
	g1 := cfg.repairBackoffFor("a", 1)
	g2 := cfg.repairBackoffFor("a", 2)
	if g1 < time.Second || g2 < 2*time.Second {
		t.Fatalf("backoff gates shrank below base: g1=%v g2=%v", g1, g2)
	}

	// Attempt 1 fails; backoff gates the next attempt until t1+g1.
	m.RunCycle(t1)
	if m.Recovery.RepairAttemptsFailed != 1 {
		t.Fatalf("attempts = %d", m.Recovery.RepairAttemptsFailed)
	}
	m.RunCycle(t1.Add(g1 - time.Millisecond))
	if m.Recovery.RepairAttemptsFailed != 1 {
		t.Error("attempt ran inside the backoff window")
	}
	// Attempt 2 at +g1; backoff roughly doubles to g2.
	m.RunCycle(t1.Add(g1))
	if m.Recovery.RepairAttemptsFailed != 2 {
		t.Fatalf("attempts = %d, want 2", m.Recovery.RepairAttemptsFailed)
	}
	m.RunCycle(t1.Add(g1 + g2 - time.Millisecond))
	if m.Recovery.RepairAttemptsFailed != 2 {
		t.Error("attempt ran inside the doubled backoff window")
	}
	// Attempt 3 exceeds RepairMaxRetries=2: abandoned.
	abandonAt := t1.Add(g1 + g2)
	m.RunCycle(abandonAt)
	if m.Recovery.RepairsAbandoned != 1 {
		t.Fatalf("RepairsAbandoned = %d", m.Recovery.RepairsAbandoned)
	}
	if m.PendingRepairs() != 0 {
		t.Error("abandoned repair still pending")
	}
	if got := m.DegradedLRAs(); len(got) != 1 || got[0] != "a" {
		t.Errorf("DegradedLRAs = %v, abandoned LRA should stay degraded", got)
	}
	if d := m.Recovery.DegradedTime["a"]; d != g1+g2 {
		t.Errorf("degraded time = %v, want %v", d, g1+g2)
	}
}

// TestRepairFallbackToGreedy: after RepairFallbackAfter failed attempts,
// the repair batch is placed by the greedy heuristic.
func TestRepairFallbackToGreedy(t *testing.T) {
	cfg := Config{
		Interval: time.Second, RepairBackoff: time.Second, RepairFallbackAfter: 1,
	}
	m, release := drainedPair(t, cfg)
	t1 := t0.Add(time.Minute)
	m.FailNode(0, t1)
	m.RunCycle(t1) // attempt 1 fails (cluster full)
	release()      // capacity returns
	stats := m.RunCycle(t1.Add(cfg.repairBackoffFor("a", 1)))
	if stats.Repaired != 2 {
		t.Fatalf("stats = %+v, want 2 repaired", stats)
	}
	if m.Recovery.FallbackPlacements != 1 {
		t.Errorf("FallbackPlacements = %d, want 1", m.Recovery.FallbackPlacements)
	}
}

// TestRecoverNodeClearsBackoff: when a node returns, pending repairs
// become eligible immediately instead of waiting out their backoff.
func TestRecoverNodeClearsBackoff(t *testing.T) {
	m, _ := drainedPair(t, Config{
		Interval: time.Second, RepairBackoff: time.Hour, RepairFallbackAfter: -1,
	})
	t1 := t0.Add(time.Minute)
	m.FailNode(0, t1)
	m.RunCycle(t1) // fails; backoff gate now t1+1h
	if !m.RecoverNode(0, t1.Add(time.Second)) {
		t.Fatal("recover reported no change")
	}
	stats := m.RunCycle(t1.Add(2 * time.Second))
	if stats.Repaired != 2 {
		t.Fatalf("stats = %+v, want repair right after recovery", stats)
	}
}

// TestRemoveLRACancelsRepair: tearing down a degraded LRA drops its
// pending repair.
func TestRemoveLRACancelsRepair(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	_ = m.SubmitLRA(app("a", 2), t0)
	m.RunCycle(t0)
	ids, _ := m.Deployed("a")
	node, _ := m.Cluster.ContainerNode(ids[0])
	m.FailNode(node, t0.Add(time.Minute))
	if m.PendingRepairs() == 0 {
		t.Fatal("no pending repair")
	}
	if err := m.RemoveLRA("a"); err != nil {
		t.Fatal(err)
	}
	if m.PendingRepairs() != 0 {
		t.Error("repair survived RemoveLRA")
	}
	stats := m.RunCycle(t0.Add(2 * time.Minute))
	if stats.Repaired != 0 || stats.RepairFailures != 0 {
		t.Errorf("stats = %+v, removed LRA repaired", stats)
	}
}

// TestUnknownNodeIDsAreNoOps: failure reports for node IDs outside the
// cluster (stale or malformed) are ignored, not panics.
func TestUnknownNodeIDsAreNoOps(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	for _, id := range []cluster.NodeID{-1, cluster.NodeID(m.Cluster.NumNodes()), 99} {
		if evs := m.FailNode(id, t0); evs != nil {
			t.Errorf("FailNode(%d) = %v, want nil", id, evs)
		}
		if evs := m.DrainNode(id, t0); evs != nil {
			t.Errorf("DrainNode(%d) = %v, want nil", id, evs)
		}
		if m.RecoverNode(id, t0) {
			t.Errorf("RecoverNode(%d) reported a change", id)
		}
	}
	r := m.Recovery
	if r.NodeFailures != 0 || r.NodeDrains != 0 || r.NodeRecoveries != 0 {
		t.Errorf("unknown node IDs were counted: %+v", r)
	}
}

// TestTaskEvictionRefundsQueue: a task container lost to a node failure is
// refunded to its queue's accounting.
func TestTaskEvictionRefundsQueue(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	_ = m.SubmitTasks("job", "default", t0, taskched.TaskRequest{Count: 2, Demand: resource.New(1024, 1)})
	m.Tasks.NodeHeartbeat(3, t0)
	if got := m.Tasks.QueueUsed("default"); got != resource.New(2048, 2) {
		t.Fatalf("queue used = %v", got)
	}
	m.FailNode(3, t0.Add(time.Minute))
	if got := m.Tasks.QueueUsed("default"); !got.IsZero() {
		t.Errorf("queue used after eviction = %v, want zero", got)
	}
	if m.Recovery.TaskEvictions != 2 {
		t.Errorf("TaskEvictions = %d", m.Recovery.TaskEvictions)
	}
	if m.PendingRepairs() != 0 {
		t.Error("task evictions queued LRA repairs")
	}
}

// TestSimDrivenRecovery is the acceptance scenario: under a simulated
// SU-wide failure, every degraded LRA returns to its declared container
// count within the retry budget, and repair latencies are nonzero and
// bounded by budget × interval.
func TestSimDrivenRecovery(t *testing.T) {
	const interval = 10 * time.Second
	c := cluster.Grid(16, 4, resource.New(16384, 8))
	m := New(c, lra.NewILP(), Config{Interval: interval})
	eng := sim.NewEngine(time.Time{})
	start := eng.Now()
	end := start.Add(15 * time.Minute)

	apps := []string{"hbase", "storm", "kafka", "memcached"}
	for _, id := range apps {
		if err := m.SubmitLRA(app(id, 4, constraint.Tag("c-"+id[:2])), start); err != nil {
			t.Fatal(err)
		}
	}
	eng.Every(start, interval, func(now time.Time) bool {
		m.Tick(now)
		return now.Before(end)
	})
	// One whole "service unit" (nodes 0–3) fails a minute in and returns
	// five minutes later.
	su := []cluster.NodeID{0, 1, 2, 3}
	eng.At(start.Add(61*time.Second), func(now time.Time) {
		for _, n := range su {
			m.FailNode(n, now)
		}
	})
	eng.At(start.Add(5*time.Minute), func(now time.Time) {
		for _, n := range su {
			m.RecoverNode(n, now)
		}
	})
	eng.Run(0)

	if got := len(m.Rejected); got != 0 {
		t.Fatalf("rejected LRAs: %v", m.Rejected)
	}
	for _, id := range apps {
		ids, ok := m.Deployed(id)
		if !ok || len(ids) != 4 {
			t.Errorf("%s: %d/4 containers after recovery window", id, len(ids))
		}
	}
	if got := m.DegradedLRAs(); len(got) != 0 {
		t.Errorf("still degraded at end: %v", got)
	}
	if m.Recovery.Evictions == 0 {
		t.Fatal("scenario evicted nothing; SU failure missed the LRAs")
	}
	if m.Recovery.RepairsPlaced != m.Recovery.Evictions {
		t.Errorf("repaired %d of %d evicted", m.Recovery.RepairsPlaced, m.Recovery.Evictions)
	}
	if mttr := m.Recovery.MTTR(); mttr <= 0 {
		t.Error("MTTR should be nonzero: repairs happen at cycle boundaries")
	}
	budget := (Config{}).repairMaxRetries() + 1
	bound := time.Duration(budget)*interval + time.Minute // + alg latency slack
	if max := m.Recovery.MaxRepairLatency(); max <= 0 || max > bound {
		t.Errorf("max repair latency = %v, want (0, %v]", max, bound)
	}
	if m.Recovery.NodeFailures != 4 || m.Recovery.NodeRecoveries != 4 {
		t.Errorf("node transitions = %+v", m.Recovery)
	}
}
