package core

import (
	"fmt"
	"testing"
	"time"

	"medea/internal/audit"
	"medea/internal/chaos"
	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/ilp"
	"medea/internal/lra"
	"medea/internal/resource"
)

// hardApp builds a 2-container app with a hard (weight >= 100)
// anti-affinity between its own containers per node, so any pile-on
// placement is inadmissible. The constraint is scoped to the app's
// automatic appID tag — a shared tag would bind across apps and make
// honest placements infeasible once every node hosts one container.
func hardApp(i int) *lra.Application {
	id := fmt.Sprintf("app-%03d", i)
	self := constraint.E(constraint.AppIDTag(id))
	return &lra.Application{
		ID: id,
		Groups: []lra.ContainerGroup{{
			Name: "g", Count: 2, Demand: resource.New(100, 1), Tags: []constraint.Tag{"svc"},
		}},
		Constraints: []constraint.Constraint{
			constraint.Weighted(constraint.AntiAffinity(self, self, constraint.Node),
				audit.DefaultHardWeight),
		},
	}
}

// TestByzantineAlgorithm drives the full hardening pipeline with a
// fault-injecting algorithm: panics, over-capacity / constraint-violating
// / duplicate-ID / down-node placements, truncated result batches and
// solver-budget exhaustion. The scheduler must never crash, never commit
// an invalid assignment (audit.FailFast panics the test if it does), trip
// the breaker onto the heuristic ladder, and — once the faults stop —
// restore the configured algorithm via a half-open probe.
func TestByzantineAlgorithm(t *testing.T) {
	c := cluster.Grid(6, 3, resource.New(10000, 100))
	byz := &chaos.Byzantine{Inner: lra.NewNodeCandidates(), Every: 1}
	m := New(c, byz, Config{
		Interval:         time.Second,
		MaxRetries:       50,
		Audit:            audit.FailFast,
		BreakerThreshold: 2,
		BreakerCooldown:  2,
	})

	now := time.Unix(0, 0)
	// One node is down so the down-node fault has a target.
	m.FailNode(5, now)

	sawDegraded := false
	runCycle := func(i int) CycleStats {
		if err := m.SubmitLRA(hardApp(i), now); err != nil {
			t.Fatalf("cycle %d: submit: %v", i, err)
		}
		now = now.Add(time.Second)
		stats := m.RunCycle(now)
		if stats.Level > 0 {
			sawDegraded = true
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: invariants: %v", i, err)
		}
		return stats
	}

	// Phase 1: every call misbehaves. The breaker must trip within the
	// first few cycles and keep scheduling on the heuristic ladder.
	for i := 0; i < 20; i++ {
		runCycle(i)
	}
	if m.Pipeline.BreakerTrips() == 0 {
		t.Fatalf("breaker never tripped: events %v", m.Pipeline.Events())
	}
	if !sawDegraded || m.Pipeline.DegradedCycles() == 0 {
		t.Fatal("no cycle ran on the degradation ladder")
	}
	if m.Pipeline.PanicsRecovered() == 0 {
		t.Fatal("no panic was recovered")
	}
	if m.Pipeline.LastPanic() == "" {
		t.Fatal("recovered panic left no stack in metrics")
	}
	if m.Pipeline.ValidationRejects() == 0 {
		t.Fatal("no placement was rejected by commit-time validation")
	}
	if m.Pipeline.SolverExhaustions() == 0 {
		t.Fatalf("exhaustion fault never surfaced: injected %d faults", byz.Injected)
	}
	if m.Pipeline.BreakerReopens() == 0 {
		t.Fatal("half-open probes never failed while the algorithm was still broken")
	}
	// Degraded cycles still make progress: the heuristic rungs place the
	// (valid) requeued apps.
	placedDuringChaos := len(m.deployed)
	if placedDuringChaos == 0 {
		t.Fatal("no LRA was placed while degraded — ladder is not scheduling")
	}

	// Phase 2: the algorithm heals. The next half-open probe must succeed
	// and restore the configured algorithm (breaker reset).
	byz.Every = 0
	var last CycleStats
	for i := 20; i < 35; i++ {
		last = runCycle(i)
		if m.Pipeline.BreakerResets() > 0 && last.Level == 0 {
			break
		}
	}
	if m.Pipeline.BreakerResets() == 0 {
		t.Fatalf("breaker never reset after the algorithm healed: events %v", m.Pipeline.Events())
	}
	if last.Level != 0 {
		t.Fatalf("last cycle still degraded (level %d)", last.Level)
	}
	if last.Algorithm != byz.Name() {
		t.Fatalf("last cycle ran %q, want restored %q", last.Algorithm, byz.Name())
	}
	if len(m.deployed) <= placedDuringChaos {
		t.Fatal("no LRA placed after recovery")
	}

	// The transition log tells the whole story: at least one trip, one
	// reopen and one reset, in order.
	var trips, reopens, resets int
	for _, e := range m.Pipeline.Events() {
		switch {
		case e.From == "closed" && e.To == "open":
			trips++
		case e.From == "half-open" && e.To == "open":
			reopens++
		case e.To == "closed":
			resets++
		}
	}
	if trips == 0 || reopens == 0 || resets == 0 {
		t.Fatalf("transition log incomplete (trips=%d reopens=%d resets=%d): %v",
			trips, reopens, resets, m.Pipeline.Events())
	}
}

// TestPanicIsolationPreservesRetries verifies a panicking algorithm
// requeues the batch without consuming the apps' conflict-retry budget.
func TestPanicIsolationPreservesRetries(t *testing.T) {
	c := cluster.Grid(4, 2, resource.New(1000, 10))
	byz := &chaos.Byzantine{Inner: lra.NewNodeCandidates(), Every: 1, Faults: []chaos.Fault{chaos.FaultPanic}}
	m := New(c, byz, Config{Interval: time.Second, MaxRetries: 1, BreakerThreshold: -1})

	now := time.Unix(0, 0)
	if err := m.SubmitLRA(hardApp(0), now); err != nil {
		t.Fatal(err)
	}
	// MaxRetries is 1, yet five panicking cycles must not reject the app.
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		stats := m.RunCycle(now)
		if !stats.PanicRecovered {
			t.Fatalf("cycle %d: panic not recovered", i)
		}
	}
	if len(m.Rejected) != 0 {
		t.Fatalf("panicking cycles consumed retry budget: rejected %v", m.Rejected)
	}
	if m.PendingLRAs() != 1 {
		t.Fatalf("app lost: pending=%d", m.PendingLRAs())
	}
	// Heal and confirm the app still lands.
	byz.Every = 0
	now = now.Add(time.Second)
	if stats := m.RunCycle(now); stats.Placed != 1 {
		t.Fatalf("healed cycle placed %d, want 1", stats.Placed)
	}
}

// TestBreakerDisabled verifies BreakerThreshold < 0 leaves the configured
// algorithm in charge no matter how often it fails.
func TestBreakerDisabled(t *testing.T) {
	c := cluster.Grid(4, 2, resource.New(1000, 10))
	byz := &chaos.Byzantine{Inner: lra.NewNodeCandidates(), Every: 2}
	m := New(c, byz, Config{Interval: time.Second, BreakerThreshold: -1})
	now := time.Unix(0, 0)
	for i := 0; i < 8; i++ {
		if err := m.SubmitLRA(hardApp(i), now); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
		if stats := m.RunCycle(now); stats.Level != 0 || stats.Algorithm != byz.Name() {
			t.Fatalf("cycle %d ran %q at level %d with the breaker disabled", i, stats.Algorithm, stats.Level)
		}
	}
	if m.Pipeline.BreakerTrips() != 0 {
		t.Fatalf("disabled breaker tripped %d times", m.Pipeline.BreakerTrips())
	}
}

// TestSolverModePipelineCounters: the solve-path counters flow from the
// ILP scheduler through placeBatch into PipelineStats, and SetSolverMode
// switches the path at runtime.
func TestSolverModePipelineCounters(t *testing.T) {
	m := newMedea(lra.NewILP(), Config{Interval: time.Second})
	if err := m.SubmitLRA(app("a1", 4, "hb"), t0); err != nil {
		t.Fatal(err)
	}
	if stats := m.RunCycle(t0.Add(time.Second)); stats.Placed != 1 {
		t.Fatalf("placed = %d", stats.Placed)
	}
	if got := m.Pipeline.ExactSolves(); got != 1 {
		t.Fatalf("exact solves = %d, want 1", got)
	}
	if got := m.Pipeline.ApproxSolves(); got != 0 {
		t.Fatalf("approx solves = %d, want 0", got)
	}

	m.SetSolverMode(ilp.ModeApprox, true)
	if m.SolverMode() != ilp.ModeApprox {
		t.Fatal("SolverMode not stored")
	}
	if err := m.SubmitLRA(app("a2", 4, "hb"), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if stats := m.RunCycle(t0.Add(2 * time.Second)); stats.Placed != 1 {
		t.Fatalf("approx-mode cycle placed = %d", stats.Placed)
	}
	// The forced approximate path may still prove the root integral (an
	// exact optimum without rounding); either way exactly one more solve
	// is accounted.
	if total := m.Pipeline.ExactSolves() + m.Pipeline.ApproxSolves(); total != 2 {
		t.Fatalf("total solves = %d, want 2", total)
	}
}
