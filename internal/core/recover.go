package core

import (
	"fmt"
	"sort"
	"time"

	"medea/internal/cluster"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/taskched"
)

// Restart recovery. The failure model is a scheduler process crash: the
// cluster (and the containers on it) keeps running, the journal survives,
// and everything in the Medea struct is lost. Recover rebuilds the
// scheduler in three passes:
//
//  1. restore the latest checkpoint (full durable state at one record
//     boundary);
//  2. replay the WAL tail over it, tracking the in-flight window of an
//     unfinished cycle (begin-batch without commit-batch) and its
//     placement intents;
//  3. reconcile against live cluster truth — the journal can be at most
//     one operation behind the cluster, in either direction:
//     - placement intents whose containers the cluster runs are adopted
//       as deployments (roll-forward); intents that never committed send
//       their app back through the normal pending path;
//     - repair pieces the cluster already runs (commit landed, the
//       repair-ok record did not) are re-adopted;
//     - deployed containers the cluster lost (eviction before its record
//       landed) are re-queued as zombies through the repair pipeline,
//       keeping any persisted attempt budget;
//     - containers the cluster runs for an LRA nothing owns any more
//       (crash mid-RemoveLRA) are released as orphans.
//
// Deliberately NOT persisted: metrics (counters restart at zero), the
// task-based scheduler's queue accounting (tasks are short-lived and
// re-submitted by their owners; unknown-container evictions are no-ops),
// and solver-internal state. Cluster truth is authoritative over the
// checkpoint's informational cluster snapshot.

// replayState tracks the open batch window while replaying the WAL tail.
type replayState struct {
	inFlight   map[string]*pendingApp
	intents    map[string][]lra.Assignment
	batchOrder []string
	// lraSeen accumulates every container ID the journal associated with
	// an LRA; the orphan sweep releases the unowned survivors among them.
	lraSeen map[cluster.ContainerID]bool
}

// Recover rebuilds a scheduler from its journal and the live cluster.
// now is the scheduler time recovery happens at (backoff gates and
// degradation windows for re-queued zombies start here). The journal is
// re-attached to the recovered instance and a fresh checkpoint is
// written, so the next recovery replays a short tail.
func Recover(j journal.Journal, c *cluster.Cluster, alg lra.Algorithm, cfg Config, now time.Time, queues ...taskched.QueueConfig) (*Medea, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	start := clock()
	cp, tail, err := j.Load()
	if err != nil {
		return nil, fmt.Errorf("core: recover: %w", err)
	}
	m := New(c, alg, cfg, queues...)
	rp := &replayState{
		inFlight: make(map[string]*pendingApp),
		intents:  make(map[string][]lra.Assignment),
		lraSeen:  make(map[cluster.ContainerID]bool),
	}
	if cp != nil {
		if err := m.restoreCheckpoint(cp); err != nil {
			return nil, fmt.Errorf("core: recover: %w", err)
		}
	}
	for _, dep := range m.deployed {
		for id := range dep.containers {
			rp.lraSeen[id] = true
		}
	}
	for _, r := range m.repairs {
		for _, p := range r.lost {
			rp.lraSeen[p.id] = true
		}
	}
	for _, r := range tail {
		if err := m.replayRecord(r, rp); err != nil {
			return nil, fmt.Errorf("core: recover: replaying record %d (%s): %w", r.Seq, r.Kind, err)
		}
		m.Recovery.JournalReplayed++
	}
	m.reconcile(rp, now)
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: recover: recovered state fails invariants: %w", err)
	}
	m.Recovery.RecoveryWallTime = clock().Sub(start)
	m.jnl = j
	m.writeCheckpoint(now)
	return m, nil
}

// restoreCheckpoint loads a checkpoint into a fresh instance.
func (m *Medea) restoreCheckpoint(cp *journal.Checkpoint) error {
	m.cycles = cp.Cycles
	m.repairSeq = cp.RepairSeq
	m.taskSeq = cp.TaskSeq
	m.nextRun = cp.NextRun
	m.Rejected = append([]string(nil), cp.Rejected...)
	if len(cp.Operator) > 0 {
		if err := m.Constraints.AddOperator(cp.Operator...); err != nil {
			return err
		}
	}
	for _, pa := range cp.Pending {
		if pa.App == nil {
			return fmt.Errorf("checkpoint pending entry without application")
		}
		if err := m.Constraints.AddApplication(pa.App.ID, pa.App.Constraints...); err != nil {
			return err
		}
		m.pending = append(m.pending, &pendingApp{app: pa.App, submit: pa.Submit, retries: pa.Retries})
	}
	for _, da := range cp.Deployed {
		if da.App == nil {
			return fmt.Errorf("checkpoint deployed entry without application")
		}
		if err := m.Constraints.AddApplication(da.App.ID, da.App.Constraints...); err != nil {
			return err
		}
		dep := &deployment{
			app:           da.App,
			containers:    make(map[cluster.ContainerID]containerSpec, len(da.Containers)),
			degradedSince: da.DegradedSince,
		}
		for _, ctr := range da.Containers {
			dep.containers[ctr.ID] = containerSpec{group: ctr.Group, demand: ctr.Demand, tags: ctr.Tags}
			dep.order = append(dep.order, ctr.ID)
			m.owner[ctr.ID] = da.App.ID
		}
		m.deployed[da.App.ID] = dep
	}
	for _, it := range cp.Repairs {
		r := &repairReq{appID: it.AppID, attempts: it.Attempts, notBefore: it.NotBefore, since: it.Since}
		for _, ctr := range it.Lost {
			r.lost = append(r.lost, repairPiece{
				id: ctr.ID, spec: containerSpec{group: ctr.Group, demand: ctr.Demand, tags: ctr.Tags},
			})
		}
		m.repairs[it.AppID] = r
	}
	if m.brk != nil && cp.Breaker != nil {
		m.brk.restore(cp.Breaker)
	}
	return nil
}

// replayRecord applies one WAL record to the rebuilding scheduler state.
// Replay touches scheduler bookkeeping only — never the cluster, whose
// live state is truth the reconciliation sweep compares against.
func (m *Medea) replayRecord(r *journal.Record, rp *replayState) error {
	switch r.Kind {
	case journal.KindSubmit:
		if r.App == nil {
			return fmt.Errorf("submit record without application")
		}
		if err := m.Constraints.AddApplication(r.App.ID, r.App.Constraints...); err != nil {
			return err
		}
		m.pending = append(m.pending, &pendingApp{app: r.App, submit: r.At})

	case journal.KindBeginBatch:
		m.cycles = r.Cycle
		m.nextRun = r.NextRun
		rp.batchOrder = r.Batch
		taken := make(map[string]bool, len(r.Batch))
		for _, appID := range r.Batch {
			taken[appID] = true
		}
		var rest []*pendingApp
		for _, pa := range m.pending {
			if taken[pa.app.ID] && rp.inFlight[pa.app.ID] == nil {
				rp.inFlight[pa.app.ID] = pa
				continue
			}
			rest = append(rest, pa)
		}
		m.pending = rest

	case journal.KindPlace:
		rp.intents[r.AppID] = r.Assignments
		for _, a := range r.Assignments {
			rp.lraSeen[a.Container] = true
		}

	case journal.KindRequeue:
		if pa := rp.inFlight[r.AppID]; pa != nil {
			pa.retries = r.Retries
			m.pending = append(m.pending, pa)
			delete(rp.inFlight, r.AppID)
			delete(rp.intents, r.AppID)
		}

	case journal.KindReject:
		delete(rp.inFlight, r.AppID)
		delete(rp.intents, r.AppID)
		m.Constraints.RemoveApplication(r.AppID)
		m.Rejected = append(m.Rejected, r.AppID)

	case journal.KindCommitBatch:
		m.cycles = r.Cycle
		// Every in-flight app with an intent committed before this record
		// was written; resolve them into deployments.
		for _, appID := range rp.batchOrder {
			pa := rp.inFlight[appID]
			if pa == nil {
				continue
			}
			intent := rp.intents[appID]
			if len(intent) == 0 {
				// Defensive: a batch member with neither intent nor
				// requeue/reject should not exist; re-queue it unchanged.
				m.pending = append(m.pending, pa)
				continue
			}
			m.adoptIntent(pa.app, intent)
		}
		rp.inFlight = make(map[string]*pendingApp)
		rp.intents = make(map[string][]lra.Assignment)
		rp.batchOrder = nil
		if m.brk != nil && r.Breaker != nil {
			m.brk.restore(r.Breaker)
		}

	case journal.KindEvict:
		for _, ev := range r.Evictions {
			appID, owned := m.owner[ev.Container]
			if !owned {
				continue // task eviction: queue accounting is not persisted
			}
			rp.lraSeen[ev.Container] = true
			dep := m.deployed[appID]
			spec, ok := dep.containers[ev.Container]
			if !ok {
				continue
			}
			delete(dep.containers, ev.Container)
			delete(m.owner, ev.Container)
			for i, id := range dep.order {
				if id == ev.Container {
					dep.order = append(dep.order[:i], dep.order[i+1:]...)
					break
				}
			}
			if dep.degradedSince.IsZero() {
				dep.degradedSince = r.At
			}
			req := m.repairs[appID]
			if req == nil {
				req = &repairReq{appID: appID, since: r.At, notBefore: r.At}
				m.repairs[appID] = req
			}
			req.lost = append(req.lost, repairPiece{id: ev.Container, spec: spec})
		}

	case journal.KindRepairOK:
		req := m.repairs[r.AppID]
		dep := m.deployed[r.AppID]
		if req == nil || dep == nil {
			return nil
		}
		byID := make(map[cluster.ContainerID]repairPiece, len(req.lost))
		for _, p := range req.lost {
			byID[p.id] = p
		}
		for _, id := range r.Restored {
			p, ok := byID[id]
			if !ok {
				continue
			}
			dep.containers[p.id] = p.spec
			dep.order = append(dep.order, p.id)
			m.owner[p.id] = r.AppID
		}
		delete(m.repairs, r.AppID) // repairs are all-or-nothing
		if len(dep.containers) == dep.app.NumContainers() {
			dep.degradedSince = time.Time{}
		}

	case journal.KindRepairFail:
		if req := m.repairs[r.AppID]; req != nil {
			req.attempts = r.Attempts
			req.notBefore = r.NotBefore
		}

	case journal.KindRepairAbandon:
		delete(m.repairs, r.AppID)
		if dep := m.deployed[r.AppID]; dep != nil {
			dep.degradedSince = time.Time{}
		}

	case journal.KindRemove:
		if dep := m.deployed[r.AppID]; dep != nil {
			// Scheduler-side teardown only; the crashed process may have
			// released any subset of the containers. They stay in lraSeen,
			// so the orphan sweep finishes the job against cluster truth.
			for id := range dep.containers {
				rp.lraSeen[id] = true
				delete(m.owner, id)
			}
			delete(m.deployed, r.AppID)
		}
		// A withdrawn pending LRA (WithdrawLRA) journals the same record;
		// drop the pending entry the submit record re-created.
		for i, pa := range m.pending {
			if pa.app.ID == r.AppID {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		delete(rp.inFlight, r.AppID)
		delete(rp.intents, r.AppID)
		delete(m.repairs, r.AppID)
		m.Constraints.RemoveApplication(r.AppID)

	case journal.KindNodeRecover:
		for _, req := range m.repairs {
			if req.notBefore.After(r.At) {
				req.notBefore = r.At
			}
		}

	default:
		return fmt.Errorf("unknown record kind %q", r.Kind)
	}
	return nil
}

// adoptIntent turns a replayed placement intent into a deployment. The
// reconciliation sweep afterwards validates every adopted container
// against cluster truth (missing ones become zombies).
func (m *Medea) adoptIntent(app *lra.Application, intent []lra.Assignment) {
	dep := &deployment{
		app:        app,
		containers: make(map[cluster.ContainerID]containerSpec, len(intent)),
	}
	for _, a := range intent {
		dep.containers[a.Container] = containerSpec{group: a.Group, demand: a.Demand, tags: a.Tags}
		dep.order = append(dep.order, a.Container)
		m.owner[a.Container] = app.ID
	}
	m.deployed[app.ID] = dep
}

// reconcile aligns the replayed scheduler state with live cluster truth.
func (m *Medea) reconcile(rp *replayState, now time.Time) {
	// 1. Half-applied batch: a begin-batch without its commit-batch left
	// apps in flight. An app whose intent the cluster honors is adopted;
	// one whose commit never landed (or that never reached placement)
	// goes back through the normal pending path with its persisted retry
	// budget.
	for _, appID := range rp.batchOrder {
		pa := rp.inFlight[appID]
		if pa == nil {
			continue // resolved by a requeue/reject record
		}
		intent := rp.intents[appID]
		committed := len(intent) > 0
		for _, a := range intent {
			if _, ok := m.Cluster.ContainerNode(a.Container); !ok {
				committed = false // task commits are atomic: all or nothing
				break
			}
		}
		if !committed {
			m.pending = append(m.pending, pa)
			m.Recovery.BatchesReadmitted++
			continue
		}
		m.adoptIntent(pa.app, intent)
		m.Recovery.ContainersAdopted += len(intent)
	}

	// 2. Repair pieces the cluster already runs: the repair committed but
	// the crash beat its repair-ok record. Re-adopt them; what remains
	// lost keeps its persisted attempt budget.
	for _, appID := range sortedRepairIDs(m.repairs) {
		req := m.repairs[appID]
		dep := m.deployed[appID]
		if dep == nil {
			delete(m.repairs, appID)
			continue
		}
		var remaining []repairPiece
		for _, p := range req.lost {
			if _, ok := m.Cluster.ContainerNode(p.id); !ok {
				remaining = append(remaining, p)
				continue
			}
			dep.containers[p.id] = p.spec
			dep.order = append(dep.order, p.id)
			m.owner[p.id] = appID
			m.Recovery.ContainersAdopted++
		}
		if len(remaining) == 0 {
			delete(m.repairs, appID)
			if len(dep.containers) == dep.app.NumContainers() {
				dep.degradedSince = time.Time{}
			}
			continue
		}
		req.lost = remaining
	}

	// 3. Zombie sweep: deployed containers the cluster no longer runs
	// (an eviction whose record never landed, or state the checkpoint
	// believed in). Re-queue them through the repair pipeline.
	deployedIDs := make([]string, 0, len(m.deployed))
	for appID := range m.deployed {
		deployedIDs = append(deployedIDs, appID)
	}
	sort.Strings(deployedIDs)
	for _, appID := range deployedIDs {
		dep := m.deployed[appID]
		live := dep.order[:0]
		for _, id := range dep.order {
			if _, ok := m.Cluster.ContainerNode(id); ok {
				live = append(live, id)
				continue
			}
			spec := dep.containers[id]
			delete(dep.containers, id)
			delete(m.owner, id)
			req := m.repairs[appID]
			if req == nil {
				req = &repairReq{appID: appID, since: now, notBefore: now}
				m.repairs[appID] = req
			}
			req.lost = append(req.lost, repairPiece{id: id, spec: spec})
			if dep.degradedSince.IsZero() {
				dep.degradedSince = now
			}
			m.Recovery.ZombiesRequeued++
		}
		dep.order = live
	}

	// 4. Orphan sweep: containers the cluster runs for an LRA that no
	// longer owns them (crash mid-RemoveLRA, or an adoption the journal
	// later walked back). Release them — nothing will ever reclaim them.
	orphans := make([]cluster.ContainerID, 0, len(rp.lraSeen))
	for id := range rp.lraSeen {
		orphans = append(orphans, id)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, id := range orphans {
		if _, owned := m.owner[id]; owned {
			continue
		}
		if _, ok := m.Cluster.ContainerNode(id); !ok {
			continue
		}
		if err := m.Cluster.Release(id); err != nil {
			panic(err) // unreachable: the container was just looked up
		}
		m.Recovery.OrphansReleased++
	}
}

func sortedRepairIDs(repairs map[string]*repairReq) []string {
	out := make([]string, 0, len(repairs))
	for appID := range repairs {
		out = append(out, appID)
	}
	sort.Strings(out)
	return out
}
