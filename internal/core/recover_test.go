package core

import (
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/resource"
)

// journaledMedea builds a scheduler over a small grid with an attached
// in-memory journal, for restart-recovery tests.
func journaledMedea(t *testing.T, cfg Config) (*Medea, *journal.Memory) {
	t.Helper()
	c := cluster.Grid(4, 2, resource.New(16384, 8))
	m := New(c, lra.NewSerial(), cfg)
	j := journal.NewMemory()
	if err := m.AttachJournal(j, t0); err != nil {
		t.Fatal(err)
	}
	return m, j
}

// assignmentsOf reconstructs the placement intent for a deployed LRA from
// cluster truth, as a journal place record would have carried it.
func assignmentsOf(t *testing.T, m *Medea, appID string) []lra.Assignment {
	t.Helper()
	ids, ok := m.Deployed(appID)
	if !ok {
		t.Fatalf("%s not deployed", appID)
	}
	out := make([]lra.Assignment, 0, len(ids))
	for _, id := range ids {
		node, ok := m.Cluster.ContainerNode(id)
		if !ok {
			t.Fatalf("container %s not in cluster", id)
		}
		tags, _ := m.Cluster.ContainerTags(id)
		out = append(out, lra.Assignment{
			Container: id, Group: "w", Node: node,
			Demand: m.Cluster.ContainerDemand(id), Tags: tags,
		})
	}
	return out
}

// TestRecoverCleanState: a scheduler that journaled a full deploy/pending
// mix recovers to the same state from checkpoint + tail.
func TestRecoverCleanState(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second})
	if err := m.SubmitLRA(app("a", 3, "svc"), t0); err != nil {
		t.Fatal(err)
	}
	if stats := m.RunCycle(t0); stats.Placed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := m.SubmitLRA(app("b", 2), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.DeployedApps(); len(got) != 1 || got[0] != "a" {
		t.Errorf("deployed = %v, want [a]", got)
	}
	ids, _ := r.Deployed("a")
	want, _ := m.Deployed("a")
	if len(ids) != len(want) {
		t.Errorf("a containers = %v, want %v", ids, want)
	}
	if got := r.PendingApps(); len(got) != 1 || got[0] != "b" {
		t.Errorf("pending = %v, want [b]", got)
	}
	if r.Recovery.JournalReplayed == 0 {
		t.Error("no records replayed despite a WAL tail")
	}
	if r.Recovery.OrphansReleased != 0 || r.Recovery.ZombiesRequeued != 0 {
		t.Errorf("clean recovery reconciled: %+v", r.Recovery)
	}
	// The recovered instance can schedule the pending app immediately.
	if stats := r.RunCycle(t0.Add(2 * time.Second)); stats.Placed != 1 {
		t.Errorf("recovered scheduler could not place b: %+v", stats)
	}
	// Recover wrote a fresh checkpoint: the next recovery replays nothing.
	cp, tail, err := j.Load()
	if err != nil || cp == nil {
		t.Fatalf("load after recover: cp=%v err=%v", cp, err)
	}
	if len(tail) != 0 && tail[0].Seq <= cp.Seq {
		t.Errorf("stale tail after recovery checkpoint: %+v", tail[0])
	}
}

// TestRecoverAdoptsCommittedIntent: a crash after the placement committed
// but before the commit-batch record must adopt the containers the
// cluster already runs, not double-place or leak them.
func TestRecoverAdoptsCommittedIntent(t *testing.T) {
	m, _ := journaledMedea(t, Config{Interval: time.Second})
	if err := m.SubmitLRA(app("a", 3, "svc"), t0); err != nil {
		t.Fatal(err)
	}
	if stats := m.RunCycle(t0); stats.Placed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	before := m.Cluster.NumContainers()

	// Rebuild the journal as the crashed process would have left it: the
	// intent is durable, the commit-batch record is not.
	j := journal.NewMemory()
	empty := New(cluster.Grid(1, 1, resource.New(1024, 1)), lra.NewSerial(), Config{})
	if err := empty.AttachJournal(j, t0); err != nil {
		t.Fatal(err)
	}
	a := app("a", 3, "svc")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(&journal.Record{Kind: journal.KindSubmit, At: t0, App: a, AppID: "a"}))
	must(j.Append(&journal.Record{Kind: journal.KindBeginBatch, At: t0, Cycle: 1, Batch: []string{"a"}}))
	must(j.Append(&journal.Record{Kind: journal.KindPlace, At: t0, AppID: "a", Assignments: assignmentsOf(t, m, "a")}))

	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.DeployedApps(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("deployed = %v, want [a]", got)
	}
	if r.Recovery.ContainersAdopted != 3 {
		t.Errorf("ContainersAdopted = %d, want 3", r.Recovery.ContainersAdopted)
	}
	if r.PendingLRAs() != 0 {
		t.Error("adopted app also re-queued")
	}
	if got := r.Cluster.NumContainers(); got != before {
		t.Errorf("cluster containers = %d, want %d (no leak, no double-place)", got, before)
	}
}

// TestRecoverReadmitsUncommittedBatch: a crash after begin-batch but
// before anything committed sends the batch back through the pending
// path with its persisted retry budget.
func TestRecoverReadmitsUncommittedBatch(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second})
	if err := m.SubmitLRA(app("b", 2), t0); err != nil {
		t.Fatal(err)
	}
	// The crash point: batch marked in flight, no intent, no commit.
	if err := j.Append(&journal.Record{Kind: journal.KindBeginBatch, At: t0, Cycle: 1, Batch: []string{"b"}}); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PendingApps(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("pending = %v, want [b]", got)
	}
	if r.Recovery.BatchesReadmitted != 1 {
		t.Errorf("BatchesReadmitted = %d, want 1", r.Recovery.BatchesReadmitted)
	}
	if stats := r.RunCycle(t0.Add(time.Second)); stats.Placed != 1 {
		t.Errorf("re-admitted app did not place: %+v", stats)
	}
}

// TestRecoverPreservesRetryBudget: satellite regression — an LRA that
// consumed placement retries before the crash resumes with the persisted
// count, not a fresh budget.
func TestRecoverPreservesRetryBudget(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second, MaxRetries: 5})
	// 1000 containers never fit the 4-node grid: every cycle consumes one
	// retry and requeues.
	if err := m.SubmitLRA(app("huge", 1000), t0); err != nil {
		t.Fatal(err)
	}
	m.RunCycle(t0)
	m.RunCycle(t0.Add(time.Second))
	if got, ok := m.PendingRetries("huge"); !ok || got != 2 {
		t.Fatalf("live retries = %d (ok=%v), want 2", got, ok)
	}

	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second, MaxRetries: 5}, t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.PendingRetries("huge"); !ok || got != 2 {
		t.Fatalf("recovered retries = %d (ok=%v), want 2", got, ok)
	}
	// Cycles 3–5 burn the rest of the budget of 5; cycle 6 rejects. A
	// fresh budget would have kept it pending for three more cycles.
	r.RunCycle(t0.Add(3 * time.Second))
	r.RunCycle(t0.Add(4 * time.Second))
	r.RunCycle(t0.Add(5 * time.Second))
	stats := r.RunCycle(t0.Add(6 * time.Second))
	if stats.Rejected != 1 {
		t.Errorf("stats = %+v, want rejection on the 6th total attempt", stats)
	}
}

// TestRecoverPreservesRepairBudget: satellite regression — a repair item
// replayed from the journal resumes with its persisted attempt count and
// backoff gate.
func TestRecoverPreservesRepairBudget(t *testing.T) {
	cfg := Config{
		Interval: time.Second, RepairMaxRetries: 2, RepairBackoff: time.Second,
		RepairFallbackAfter: -1,
	}
	m, release := drainedPair(t, cfg)
	j := journal.NewMemory()
	if err := m.AttachJournal(j, t0); err != nil {
		t.Fatal(err)
	}
	t1 := t0.Add(time.Minute)
	m.FailNode(0, t1)
	m.RunCycle(t1) // repair attempt 1 fails (no capacity)
	if got, ok := m.RepairBudget("a"); !ok || got != 1 {
		t.Fatalf("live attempts = %d (ok=%v), want 1", got, ok)
	}

	r, err := Recover(j, m.Cluster, lra.NewSerial(), cfg, t1.Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.RepairBudget("a"); !ok || got != 1 {
		t.Fatalf("recovered attempts = %d (ok=%v), want 1", got, ok)
	}
	pieces := r.PendingRepairPieces()
	if got := len(pieces["a"]); got != 2 {
		t.Fatalf("repair pieces = %v, want 2 for a", pieces)
	}
	// The replayed backoff gate still stands: a cycle inside the window
	// does not burn attempt 2.
	r.RunCycle(t1.Add(cfg.repairBackoffFor("a", 1) - time.Millisecond))
	if got, _ := r.RepairBudget("a"); got != 1 {
		t.Errorf("attempt ran inside the replayed backoff window (attempts=%d)", got)
	}
	// One failed attempt after the gate exhausts RepairMaxRetries=2 only
	// if the budget carried over. With capacity back it repairs instead.
	_ = release
	stats := r.RunCycle(t1.Add(cfg.repairBackoffFor("a", 1)))
	if got, _ := r.RepairBudget("a"); got != 2 || stats.RepairFailures != 1 {
		t.Errorf("attempts = %d, stats = %+v; want 2 attempts consumed", got, stats)
	}
}

// TestRecoverZombieSweep: a container evicted behind the scheduler's back
// (the eviction record never made it to the journal) is detected against
// cluster truth and re-queued through the repair pipeline.
func TestRecoverZombieSweep(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second})
	if err := m.SubmitLRA(app("a", 3), t0); err != nil {
		t.Fatal(err)
	}
	m.RunCycle(t0)
	ids, _ := m.Deployed("a")
	if err := m.Cluster.Release(ids[0]); err != nil { // un-journaled loss
		t.Fatal(err)
	}

	now := t0.Add(time.Second)
	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, now)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovery.ZombiesRequeued != 1 {
		t.Errorf("ZombiesRequeued = %d, want 1", r.Recovery.ZombiesRequeued)
	}
	pieces := r.PendingRepairPieces()
	if got := pieces["a"]; len(got) != 1 || got[0] != ids[0] {
		t.Errorf("repair pieces = %v, want [%s]", pieces, ids[0])
	}
	deployed, _ := r.Deployed("a")
	if len(deployed) != 2 {
		t.Errorf("deployed containers = %v, want 2 survivors", deployed)
	}
	// The repair loop restores the zombie on the next cycle.
	if stats := r.RunCycle(now.Add(time.Second)); stats.Repaired != 1 {
		t.Errorf("stats = %+v, want 1 repaired", stats)
	}
}

// TestRecoverOrphanSweep: a crash right after the remove record, before
// any release, rolls the teardown forward — the LRA is gone and its
// surviving containers are released.
func TestRecoverOrphanSweep(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second})
	if err := m.SubmitLRA(app("a", 3), t0); err != nil {
		t.Fatal(err)
	}
	m.RunCycle(t0)
	base := m.Cluster.NumContainers() - 3
	// The crash point: teardown intent durable, zero releases applied.
	if err := j.Append(&journal.Record{Kind: journal.KindRemove, AppID: "a"}); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if r.DeployedLRAs() != 0 {
		t.Errorf("deployed = %v, want none", r.DeployedApps())
	}
	if r.Recovery.OrphansReleased != 3 {
		t.Errorf("OrphansReleased = %d, want 3", r.Recovery.OrphansReleased)
	}
	if got := r.Cluster.NumContainers(); got != base {
		t.Errorf("cluster containers = %d, want %d", got, base)
	}
}

// TestRecoverRepairAckLost: a crash after the repair committed but before
// its repair-ok record re-adopts the restored containers from cluster
// truth instead of repairing them twice.
func TestRecoverRepairAckLost(t *testing.T) {
	cfg := Config{Interval: time.Second, RepairBackoff: time.Second, RepairFallbackAfter: -1}
	m, j := journaledMedea(t, cfg)
	if err := m.SubmitLRA(app("a", 3), t0); err != nil {
		t.Fatal(err)
	}
	m.RunCycle(t0)
	t1 := t0.Add(time.Minute)
	evs := m.FailNode(0, t1)
	if len(evs) == 0 {
		t.Skip("layout put nothing on node 0")
	}
	if stats := m.RunCycle(t1); stats.Repaired != len(evs) {
		t.Fatalf("repair did not restore: %+v", stats)
	}
	// Simulate the lost ack: rebuild the journal without the repair-ok
	// record by dropping the live journal's tail after the evict record.
	cp, tail, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	j2 := journal.NewMemory()
	if err := j2.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	for _, rec := range tail {
		if rec.Kind == journal.KindRepairOK {
			break // the crash ate this record and everything after
		}
		if err := j2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	r, err := Recover(j2, m.Cluster, lra.NewSerial(), cfg, t1.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	deployed, ok := r.Deployed("a")
	if !ok || len(deployed) != 3 {
		t.Fatalf("deployed = %v (ok=%v), want 3 containers", deployed, ok)
	}
	if len(r.PendingRepairPieces()) != 0 {
		t.Errorf("repair still pending after adoption: %v", r.PendingRepairPieces())
	}
	if r.Recovery.ContainersAdopted != len(evs) {
		t.Errorf("ContainersAdopted = %d, want %d", r.Recovery.ContainersAdopted, len(evs))
	}
}

// TestRepairBackoffSchedulePinned: satellite — the deterministic jittered
// backoff schedule is a pure function of (config, appID, attempts). The
// literals pin the FNV-1a-derived schedule; any change to the jitter
// derivation breaks journal-replay equivalence and must show up here.
func TestRepairBackoffSchedulePinned(t *testing.T) {
	cfg := Config{RepairBackoff: time.Second} // max defaults to 8s
	want := map[string][]time.Duration{
		"a": {1068758675, 2205386886, 4467015097, 8478643308, 8990271519},
		"b": {1021897598, 2010269387, 4498641176, 8580038653, 8068410442},
	}
	for appID, gates := range want {
		for i, g := range gates {
			if got := cfg.repairBackoffFor(appID, i+1); got != g {
				t.Errorf("repairBackoffFor(%q, %d) = %d, want %d", appID, i+1, got, g)
			}
		}
	}
	// Structural properties, independent of the pinned constants: the
	// jitter stays within [raw, raw+raw/8) of the un-jittered exponential.
	for attempts := 1; attempts <= 6; attempts++ {
		raw := time.Second << uint(attempts-1)
		if raw > 8*time.Second {
			raw = 8 * time.Second
		}
		got := cfg.repairBackoffFor("c", attempts)
		if got < raw || got >= raw+raw/8 {
			t.Errorf("attempt %d: %v outside [%v, %v)", attempts, got, raw, raw+raw/8)
		}
	}
	// Determinism across calls and across equivalent Config values (the
	// property replay relies on).
	if cfg.repairBackoffFor("a", 3) != (Config{RepairBackoff: time.Second}).repairBackoffFor("a", 3) {
		t.Error("schedule not a pure function of its inputs")
	}
	// Huge attempt counts neither overflow nor exceed the cap window.
	if got := cfg.repairBackoffFor("a", 1000); got < 8*time.Second || got >= 9*time.Second {
		t.Errorf("attempt 1000 = %v, want within [8s, 9s)", got)
	}
}

// TestRecoverEmptyJournal: recovering from a journal holding only the
// attach-time checkpoint of an empty scheduler yields a working empty
// scheduler.
func TestRecoverEmptyJournal(t *testing.T) {
	m, j := journaledMedea(t, Config{Interval: time.Second})
	r, err := Recover(j, m.Cluster, lra.NewSerial(), Config{Interval: time.Second}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeployedLRAs() != 0 || r.PendingLRAs() != 0 {
		t.Errorf("recovered non-empty: deployed=%d pending=%d", r.DeployedLRAs(), r.PendingLRAs())
	}
	if err := r.SubmitLRA(app("x", 1), t0); err != nil {
		t.Fatal(err)
	}
	if stats := r.RunCycle(t0); stats.Placed != 1 {
		t.Errorf("stats = %+v", stats)
	}
}
