package core

import (
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/resource"
)

// TestSubmitRejectsPendingDuplicate: a second submission of an ID that is
// already pending must be refused — a silent second copy would register
// its constraints twice and, once both place, overwrite the deployment
// map and orphan the first copy's containers.
func TestSubmitRejectsPendingDuplicate(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	con, err := constraint.Parse("{hb, {hb, 0, 1}, node}")
	if err != nil {
		t.Fatal(err)
	}
	a := app("dup", 1, "hb")
	a.Constraints = []constraint.Constraint{con}
	if err := m.SubmitLRA(a, t0); err != nil {
		t.Fatal(err)
	}
	b := app("dup", 1, "hb")
	b.Constraints = []constraint.Constraint{con}
	if err := m.SubmitLRA(b, t0.Add(time.Second)); err == nil {
		t.Fatal("duplicate pending app accepted")
	}
	if got := m.PendingLRAs(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if got := len(m.Constraints.Application("dup")); got != 1 {
		t.Fatalf("registered constraints = %d, want 1 (no double registration)", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after duplicate rejection: %v", err)
	}
}

// TestWithdrawPendingLRA: a queued app can be withdrawn before any cycle
// places it; the withdrawal unregisters its constraints and frees the ID
// for resubmission. Unknown and deployed IDs are not withdrawable.
func TestWithdrawPendingLRA(t *testing.T) {
	m := newMedea(lra.NewSerial(), Config{})
	con, err := constraint.Parse("{hb, {hb, 0, 1}, node}")
	if err != nil {
		t.Fatal(err)
	}
	w := app("w", 2, "hb")
	w.Constraints = []constraint.Constraint{con}
	if err := m.SubmitLRA(w, t0); err != nil {
		t.Fatal(err)
	}
	if !m.WithdrawLRA("w", t0.Add(time.Second)) {
		t.Fatal("withdraw of pending app failed")
	}
	if got := m.PendingLRAs(); got != 0 {
		t.Fatalf("pending = %d after withdraw", got)
	}
	if got := len(m.Constraints.Application("w")); got != 0 {
		t.Fatalf("constraints survive withdraw: %d entries", got)
	}
	if m.WithdrawLRA("w", t0) {
		t.Fatal("second withdraw of the same app succeeded")
	}
	if m.WithdrawLRA("ghost", t0) {
		t.Fatal("withdraw of unknown app succeeded")
	}
	// Deployed apps go through RemoveLRA, not withdraw.
	if err := m.SubmitLRA(app("d", 1), t0); err != nil {
		t.Fatal(err)
	}
	m.RunCycle(t0.Add(time.Second))
	if m.WithdrawLRA("d", t0.Add(2*time.Second)) {
		t.Fatal("withdraw of deployed app succeeded")
	}
	// The withdrawn ID is resubmittable.
	if err := m.SubmitLRA(app("w", 2, "hb"), t0.Add(3*time.Second)); err != nil {
		t.Fatalf("resubmit after withdraw: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestWithdrawSurvivesRecovery: the withdrawal is journaled, so a crash
// after the withdraw must not resurrect the pending app on replay.
func TestWithdrawSurvivesRecovery(t *testing.T) {
	c := cluster.Grid(8, 4, resource.New(16384, 8))
	m := New(c, lra.NewSerial(), Config{})
	j := journal.NewMemory()
	if err := m.AttachJournal(j, t0); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitLRA(app("keep", 1, "hb"), t0); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitLRA(app("drop", 1, "hb"), t0); err != nil {
		t.Fatal(err)
	}
	if !m.WithdrawLRA("drop", t0.Add(time.Second)) {
		t.Fatal("withdraw failed")
	}

	r, err := Recover(j, c, lra.NewSerial(), Config{}, t0.Add(2*time.Second))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := r.PendingApps(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("recovered pending = %v, want [keep]", got)
	}
	if got := len(r.Constraints.Application("drop")); got != 0 {
		t.Fatalf("withdrawn app's constraints recovered: %d entries", got)
	}
}
