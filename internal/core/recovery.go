package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"medea/internal/audit"
	"medea/internal/cluster"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/taskched"
)

// Failure recovery (the live counterpart of §7.3): when a node goes down,
// its containers are evicted by the cluster layer; Medea detects which
// deployed LRAs were degraded and re-queues ONLY the lost container
// groups as repair requests. Repairs run at the start of every scheduling
// cycle, with a per-LRA retry budget and exponential backoff between
// attempts, and fall back from the configured algorithm (typically the
// ILP) to the greedy Medea-NC heuristic when a repair batch keeps
// failing — graceful degradation in the spirit of §5.3's heuristics.
// Repair placements respect the LRA's original constraints and are
// committed through the task-based scheduler like any other placement
// (§5.4's single-writer discipline), so repairs can lose races with task
// allocations and retry just like initial placements.

// repairPiece is one lost container awaiting a replacement. The original
// container ID is reused for the replacement, so an LRA's container
// identity is stable across failures.
type repairPiece struct {
	id   cluster.ContainerID
	spec containerSpec
}

// repairReq collects the lost containers of one degraded LRA.
type repairReq struct {
	appID     string
	lost      []repairPiece
	attempts  int
	notBefore time.Time // backoff gate
	since     time.Time // first eviction of this degradation window
}

// knownNode reports whether the ID names a node of the cluster; state
// transitions on unknown IDs are no-ops (failure reports come from
// outside the scheduler and may be stale or malformed).
func (m *Medea) knownNode(node cluster.NodeID) bool {
	return node >= 0 && int(node) < m.Cluster.NumNodes()
}

// FailNode takes a node down at runtime and routes the evicted containers
// into the repair queue. It returns the evicted set (nil if the node was
// already down or unknown).
func (m *Medea) FailNode(node cluster.NodeID, now time.Time) []cluster.Eviction {
	if !m.knownNode(node) || m.Cluster.Node(node).State() == cluster.NodeDown {
		return nil
	}
	evs := m.Cluster.FailNode(node)
	m.Recovery.NodeFailures++
	m.HandleEvictions(evs, now)
	return evs
}

// RecoverNode brings a node back. Pending repair backoffs are cleared:
// capacity just returned, so every degraded LRA becomes repair-eligible
// at the next cycle. It reports whether the node state changed.
func (m *Medea) RecoverNode(node cluster.NodeID, now time.Time) bool {
	if !m.Cluster.RecoverNode(node) {
		return false
	}
	m.Recovery.NodeRecoveries++
	m.logRecord(&journal.Record{Kind: journal.KindNodeRecover, At: now, Node: node})
	for _, r := range m.repairs {
		if r.notBefore.After(now) {
			r.notBefore = now
		}
	}
	return true
}

// DrainNode starts planned maintenance on a node: no new allocations land
// on it, resident LRA containers are released and re-queued for placement
// elsewhere through the repair pipeline, and resident task containers
// keep running to completion (they are short-lived by design). It returns
// the relocated LRA containers (nil if the node was not up or unknown).
func (m *Medea) DrainNode(node cluster.NodeID, now time.Time) []cluster.Eviction {
	if !m.knownNode(node) || m.Cluster.Node(node).State() != cluster.NodeUp {
		return nil
	}
	resident := m.Cluster.DrainNode(node)
	m.Recovery.NodeDrains++
	var lraEvs []cluster.Eviction
	for _, ev := range resident {
		if _, owned := m.owner[ev.Container]; !owned {
			continue
		}
		if err := m.Cluster.Release(ev.Container); err != nil {
			panic(err) // unreachable: releasing a just-enumerated resident container
		}
		lraEvs = append(lraEvs, ev)
	}
	m.HandleEvictions(lraEvs, now)
	return lraEvs
}

// HandleEvictions ingests container evictions produced by cluster-level
// state transitions (e.g. a caller driving Cluster.FailNode directly):
// lost LRA containers are queued for repair, displaced task containers
// are reported to the task scheduler for queue accounting. It returns the
// number of degraded LRAs.
func (m *Medea) HandleEvictions(evs []cluster.Eviction, now time.Time) int {
	if len(evs) > 0 {
		// The eviction record precedes the scheduler-state mutations: a
		// crash right here leaves the journal behind cluster truth, which
		// the recovery zombie sweep repairs (the containers are already
		// gone from the cluster either way).
		m.logRecord(&journal.Record{Kind: journal.KindEvict, At: now, Evictions: evs})
	}
	degraded := map[string]bool{}
	var taskEvs []cluster.Eviction
	for _, ev := range evs {
		appID, owned := m.owner[ev.Container]
		if !owned {
			m.Recovery.TaskEvictions++
			taskEvs = append(taskEvs, ev)
			continue
		}
		dep := m.deployed[appID]
		spec, ok := dep.containers[ev.Container]
		if !ok {
			continue // already evicted (defensive; evictions are reported once)
		}
		m.Recovery.Evictions++
		degraded[appID] = true
		delete(dep.containers, ev.Container)
		delete(m.owner, ev.Container)
		for i, id := range dep.order {
			if id == ev.Container {
				dep.order = append(dep.order[:i], dep.order[i+1:]...)
				break
			}
		}
		if dep.degradedSince.IsZero() {
			dep.degradedSince = now
		}
		r := m.repairs[appID]
		if r == nil {
			r = &repairReq{appID: appID, since: now, notBefore: now}
			m.repairs[appID] = r
		}
		r.lost = append(r.lost, repairPiece{id: ev.Container, spec: spec})
	}
	if len(taskEvs) > 0 {
		m.Tasks.HandleEvictions(taskEvs)
	}
	return len(degraded)
}

// DegradedLRAs returns the IDs of deployed LRAs currently below their
// declared container count, sorted.
func (m *Medea) DegradedLRAs() []string {
	var out []string
	for appID, dep := range m.deployed {
		if len(dep.containers) < dep.app.NumContainers() {
			out = append(out, appID)
		}
	}
	sort.Strings(out)
	return out
}

// PendingRepairs returns the number of containers awaiting repair.
func (m *Medea) PendingRepairs() int {
	n := 0
	for _, r := range m.repairs {
		n += len(r.lost)
	}
	return n
}

// repairBackoffFor returns the backoff gate delay after the attempts-th
// consecutive failed repair of appID: exponential from repairBackoff(),
// capped at repairBackoffMax(), plus a decorrelation jitter in
// [0, backoff/8) drawn from an FNV-1a hash of (appID, attempts). The
// jitter spreads the retries of LRAs degraded by the same node failure
// without any mutable RNG state: the schedule is a pure function of its
// inputs, so a journal replay recomputes exactly the gates the live run
// chose.
func (c Config) repairBackoffFor(appID string, attempts int) time.Duration {
	shift := attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16 // cap the shift; the max clamp below dominates anyway
	}
	backoff := c.repairBackoff() << uint(shift)
	if max := c.repairBackoffMax(); backoff > max {
		backoff = max
	}
	if window := backoff / 8; window > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", appID, attempts)
		backoff += time.Duration(h.Sum64() % uint64(window))
	}
	return backoff
}

// repairsDue reports whether any repair is past its backoff gate.
func (m *Medea) repairsDue(now time.Time) bool {
	for _, r := range m.repairs {
		if !r.notBefore.After(now) {
			return true
		}
	}
	return false
}

// runRepairs attempts every due repair request, one batch per degraded
// LRA. Each batch is all-or-nothing (Equation 4 applies to repairs too):
// either every lost container of the LRA is restored or the attempt
// fails and backs off.
func (m *Medea) runRepairs(now time.Time, stats *CycleStats) {
	if len(m.repairs) == 0 {
		return
	}
	var due []string
	for appID, r := range m.repairs {
		if !r.notBefore.After(now) {
			due = append(due, appID)
		}
	}
	sort.Strings(due)
	for _, appID := range due {
		r := m.repairs[appID]
		dep := m.deployed[appID]
		if dep == nil {
			delete(m.repairs, appID) // LRA removed while degraded
			continue
		}
		if m.attemptRepair(r, dep, now, stats) {
			delete(m.repairs, appID)
		}
	}
}

// attemptRepair tries to place and commit one repair batch; it reports
// whether the LRA was restored.
func (m *Medea) attemptRepair(r *repairReq, dep *deployment, now time.Time, stats *CycleStats) bool {
	// Rebuild the lost container groups as a synthetic application. The
	// synthetic ID must differ from the original so generated container
	// IDs cannot collide with surviving containers; the group tags are
	// the ORIGINAL effective tags (incl. the original appID tag), so
	// constraint evaluation sees the repair containers exactly as it saw
	// the lost ones.
	m.repairSeq++
	synthID := fmt.Sprintf("%s~repair%d", r.appID, m.repairSeq)
	lostByGroup := map[string][]repairPiece{}
	for _, p := range r.lost {
		lostByGroup[p.spec.group] = append(lostByGroup[p.spec.group], p)
	}
	var groups []lra.ContainerGroup
	var pieceOrder [][]repairPiece // parallel to groups
	for _, g := range dep.app.Groups {
		pieces := lostByGroup[g.Name]
		if len(pieces) == 0 {
			continue
		}
		groups = append(groups, lra.ContainerGroup{
			Name:   g.Name,
			Count:  len(pieces),
			Demand: g.Demand,
			Tags:   pieces[0].spec.tags,
		})
		pieceOrder = append(pieceOrder, pieces)
	}
	synth := &lra.Application{ID: synthID, Groups: groups, Constraints: dep.app.Constraints}

	// Graceful degradation: after repeated failures, place with the
	// greedy heuristic instead of the configured algorithm.
	alg := m.alg
	usedFallback := false
	if fa := m.cfg.repairFallbackAfter(); fa >= 0 && r.attempts >= fa {
		if m.repairFallback == nil {
			m.repairFallback = lra.NewNodeCandidates()
		}
		alg = m.repairFallback
		usedFallback = true
	}

	res := m.safePlace(alg, []*lra.Application{synth}, m.activeExcluding(map[string]bool{r.appID: true}))
	restored := res != nil && len(res.Placements) == 1 && res.Placements[0].Placed
	var commit []taskched.CommitAssignment
	var restoredPieces []repairPiece
	if restored {
		p := res.Placements[0]
		// Remap the synthetic assignments back to the original container
		// IDs and tags, group by group. A malformed result (unknown
		// group, wrong per-group count) fails the attempt instead of
		// panicking on the remap indexing.
		next := make(map[string]int, len(groups))
		gIdx := make(map[string]int, len(groups))
		for i, g := range groups {
			gIdx[g.Name] = i
		}
		var remapped []lra.Assignment
		for _, a := range p.Assignments {
			gi, ok := gIdx[a.Group]
			if !ok || next[a.Group] >= len(pieceOrder[gi]) {
				restored = false
				break
			}
			pieces := pieceOrder[gi]
			piece := pieces[next[a.Group]]
			next[a.Group]++
			commit = append(commit, taskched.CommitAssignment{
				Container: piece.id, Node: a.Node, Demand: piece.spec.demand, Tags: piece.spec.tags,
			})
			remapped = append(remapped, lra.Assignment{
				Container: piece.id, Group: piece.spec.group, Node: a.Node,
				Demand: piece.spec.demand, Tags: piece.spec.tags,
			})
			restoredPieces = append(restoredPieces, piece)
		}
		if restored && len(remapped) != len(r.lost) {
			restored = false // partial batch: repairs are all-or-nothing
		}
		if restored {
			// Commit-time validation on the batch actually committed (the
			// remapped one): capacity, health, duplicates and hard
			// constraints, exactly like initial placements.
			if err := audit.CheckAssignments(m.Cluster, r.appID, remapped, m.Constraints.Active(), m.cfg.hardWeight()); err != nil {
				m.Pipeline.RecordValidationReject(err.Error())
				stats.ValidationRejects++
				restored = false
			}
		}
		if restored {
			if err := m.Tasks.Commit(commit); err != nil {
				restored = false // lost a race; retry with backoff
			}
		}
	}

	if !restored {
		r.attempts++
		m.Recovery.RepairAttemptsFailed++
		stats.RepairFailures++
		if r.attempts > m.cfg.repairMaxRetries() {
			// Budget exhausted: the LRA stays degraded. Close the
			// accounting window here — degraded time measures the repair
			// loop's responsiveness, not the (unbounded) aftermath.
			m.Recovery.RepairsAbandoned++
			m.Recovery.AddDegraded(r.appID, now.Sub(dep.degradedSince))
			dep.degradedSince = time.Time{}
			m.logRecord(&journal.Record{Kind: journal.KindRepairAbandon, At: now, AppID: r.appID})
			return true // drop the request
		}
		r.notBefore = now.Add(m.cfg.repairBackoffFor(r.appID, r.attempts))
		// The persisted attempt count and gate are the consumed budget: a
		// recovery-replayed repair resumes with r.attempts already spent.
		m.logRecord(&journal.Record{
			Kind: journal.KindRepairFail, At: now, AppID: r.appID,
			Attempts: r.attempts, NotBefore: r.notBefore,
		})
		return false
	}

	restoredIDs := make([]cluster.ContainerID, len(restoredPieces))
	for i, piece := range restoredPieces {
		restoredIDs[i] = piece.id
	}
	// Post-commit record: if the process dies between the commit above
	// and this append, recovery finds the pieces alive in the cluster and
	// re-adopts them (the repair-piece reconciliation rule).
	m.logRecord(&journal.Record{Kind: journal.KindRepairOK, At: now, AppID: r.appID, Restored: restoredIDs})

	for _, piece := range restoredPieces {
		dep.containers[piece.id] = piece.spec
		dep.order = append(dep.order, piece.id)
		m.owner[piece.id] = r.appID
	}
	m.Recovery.RepairsPlaced += len(restoredPieces)
	// Repair latency is eviction→commit in scheduler time; the algorithm's
	// wall-clock solve latency is tracked separately (res.Latency) so the
	// metric stays deterministic under simulation.
	m.Recovery.ObserveRepair(now.Sub(r.since))
	if usedFallback {
		m.Recovery.FallbackPlacements++
	}
	stats.Repaired += len(restoredPieces)
	if len(dep.containers) == dep.app.NumContainers() && !dep.degradedSince.IsZero() {
		m.Recovery.AddDegraded(r.appID, now.Sub(dep.degradedSince))
		dep.degradedSince = time.Time{}
	}
	return true
}
