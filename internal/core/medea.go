// Package core wires Medea together: the two-scheduler design of §3
// (Figure 4). LRAs submitted through the rich constraint interface are
// batched and placed by the LRA scheduler at regular scheduling intervals;
// task-based jobs go straight to the task-based scheduler. All actual
// allocations flow through the task-based scheduler, which makes it the
// single writer of cluster state and sidesteps the conflicting-placement
// problem of multi-level schedulers (§5.4).
package core

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"medea/internal/audit"
	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/ilp"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/metrics"
	"medea/internal/resource"
	"medea/internal/taskched"
)

// Config parameterises a Medea instance.
type Config struct {
	// Interval is the LRA scheduling interval (§5.1); longer intervals
	// batch more LRAs per cycle, improving placement quality at the cost
	// of LRA scheduling latency. Default 10s (§7.1).
	Interval time.Duration
	// Options are passed to the LRA algorithm.
	Options lra.Options
	// MaxRetries bounds LRA resubmission after placement conflicts (§5.4).
	// The zero value selects the default of 3; a negative value disables
	// retries entirely (an LRA that fails its first cycle is rejected) —
	// without the sentinel, "no retries" would be unexpressible.
	MaxRetries int
	// ScheduleTasksViaLRA turns the instance into the ILP-ALL strawman of
	// §7.5 (Figure 11b): task requests are converted into single-group
	// LRAs and routed through the LRA scheduler, abandoning the
	// two-scheduler split.
	ScheduleTasksViaLRA bool

	// RepairMaxRetries bounds repair attempts per degraded LRA after node
	// failures before the repair is abandoned (zero = 5, negative = no
	// retries: one attempt only).
	RepairMaxRetries int
	// RepairBackoff is the base delay between repair attempts for one
	// LRA; consecutive failures back off exponentially from it (zero =
	// Interval).
	RepairBackoff time.Duration
	// RepairBackoffMax caps the exponential repair backoff (zero = 8 ×
	// RepairBackoff).
	RepairBackoffMax time.Duration
	// RepairFallbackAfter is the number of consecutive failed repair
	// attempts for one LRA after which its repair batch is placed with
	// the greedy Medea-NC heuristic instead of the configured algorithm —
	// graceful degradation when the ILP repeatedly times out or conflicts
	// (zero = 2, negative = never fall back).
	RepairFallbackAfter int

	// SolverBudget bounds the LRA solver's wall-clock time per cycle
	// end-to-end: it is copied into Options.SolverBudget (when that is
	// unset) and flows through the algorithm into ilp.Options.Deadline,
	// which the simplex pivot loops and branch-and-bound both honor. Zero
	// leaves the algorithm's own default (2s for the ILP).
	SolverBudget time.Duration
	// Audit selects the post-commit whole-cluster invariant check mode:
	// audit.Off (default), audit.Metrics (count violations) or
	// audit.FailFast (panic on the first violation — tests, CI, sim).
	// Commit-time placement validation is always on regardless of mode.
	Audit audit.Mode
	// HardWeight is the constraint weight at or above which commit-time
	// validation treats a constraint as hard and vetoes placements
	// violating it (0 = audit.DefaultHardWeight, negative = no
	// hard-constraint validation).
	HardWeight float64
	// BreakerThreshold is the number of consecutive failed cycles (panic,
	// solver exhaustion, invalid model, validation rejection) that trips
	// the circuit breaker onto the degradation ladder (0 = 3, negative =
	// breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is the number of cycles the breaker stays open on a
	// degraded ladder level before half-open probing the configured
	// algorithm again (0 = 2).
	BreakerCooldown int

	// CheckpointEvery is the journal checkpoint cadence in scheduling
	// cycles: every Nth journaled cycle also writes a full state
	// checkpoint, bounding the log tail a recovery has to replay (zero =
	// 16, negative = never checkpoint after the initial one). Ignored
	// until a journal is attached.
	CheckpointEvery int

	// Clock is the wall-clock source for the few places core reads real
	// time outside the caller-supplied scheduler time — today only the
	// RecoveryWallTime stamp in Recover (nil = time.Now). Deterministic
	// simulation injects its virtual clock so recovered state is
	// bit-identical across runs.
	Clock func() time.Time
}

// maxRetries resolves the MaxRetries sentinel: 0 → default 3, negative →
// no retries.
func (c Config) maxRetries() int {
	if c.MaxRetries == 0 {
		return 3
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c Config) repairMaxRetries() int {
	if c.RepairMaxRetries == 0 {
		return 5
	}
	if c.RepairMaxRetries < 0 {
		return 0
	}
	return c.RepairMaxRetries
}

func (c Config) repairBackoff() time.Duration {
	if c.RepairBackoff > 0 {
		return c.RepairBackoff
	}
	return c.Interval
}

func (c Config) repairBackoffMax() time.Duration {
	if c.RepairBackoffMax > 0 {
		return c.RepairBackoffMax
	}
	return 8 * c.repairBackoff()
}

// repairFallbackAfter resolves the fallback threshold; -1 means never.
func (c Config) repairFallbackAfter() int {
	if c.RepairFallbackAfter == 0 {
		return 2
	}
	if c.RepairFallbackAfter < 0 {
		return -1
	}
	return c.RepairFallbackAfter
}

// hardWeight resolves the HardWeight sentinel; negative disables
// hard-constraint validation (no finite weight qualifies as hard).
func (c Config) hardWeight() float64 {
	if c.HardWeight == 0 {
		return audit.DefaultHardWeight
	}
	if c.HardWeight < 0 {
		return math.Inf(1)
	}
	return c.HardWeight
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold == 0 {
		return 3
	}
	return c.BreakerThreshold
}

func (c Config) breakerCooldown() int {
	if c.BreakerCooldown <= 0 {
		return 2
	}
	return c.BreakerCooldown
}

// checkpointEvery resolves the CheckpointEvery sentinel: 0 → every 16
// cycles, negative → never.
func (c Config) checkpointEvery() int {
	if c.CheckpointEvery == 0 {
		return 16
	}
	if c.CheckpointEvery < 0 {
		return 0
	}
	return c.CheckpointEvery
}

type pendingApp struct {
	app     *lra.Application
	submit  time.Time
	retries int
}

// containerSpec is what core remembers about one live LRA container, so
// an equivalent replacement can be requested after an eviction.
type containerSpec struct {
	group  string
	demand resource.Vector
	tags   []constraint.Tag // effective tags, incl. the appID tag
}

// deployment is the live state of one placed LRA.
type deployment struct {
	app        *lra.Application
	containers map[cluster.ContainerID]containerSpec
	order      []cluster.ContainerID // placement order, for Deployed
	// degradedSince is the wall-clock start of the current degradation
	// window (zero when the LRA is at full strength).
	degradedSince time.Time
}

// Medea is the cluster scheduler.
type Medea struct {
	Cluster     *cluster.Cluster
	Constraints *constraint.Manager
	Tasks       *taskched.Scheduler

	alg     lra.Algorithm
	cfg     Config
	pending []*pendingApp
	nextRun time.Time

	deployed map[string]*deployment
	owner    map[cluster.ContainerID]string // live LRA container -> appID

	// repairs holds at most one pending repair request per degraded LRA.
	repairs   map[string]*repairReq
	repairSeq int
	// repairFallback is the degraded-mode heuristic (lazily built).
	repairFallback lra.Algorithm

	// Recovery aggregates failure-recovery counters (evictions, repairs,
	// MTTR, degraded time per LRA).
	Recovery metrics.RecoveryStats

	// Pipeline aggregates the defense-in-depth counters: recovered
	// panics, validation rejects, deadline hits, invariant violations and
	// circuit-breaker activity.
	Pipeline metrics.PipelineStats

	// brk is the degradation-ladder circuit breaker (nil when disabled).
	brk *breaker
	// cycles counts completed scheduling cycles (for breaker events and
	// fail-fast diagnostics).
	cycles int

	// LRALatencies records submission-to-commit latency per placed LRA.
	LRALatencies []time.Duration
	// Rejected lists LRAs dropped after exhausting conflict retries or
	// found unplaceable.
	Rejected []string
	// taskSeq names synthetic task LRAs in ILP-ALL mode.
	taskSeq int

	// jnl is the attached write-ahead journal (nil = volatile scheduler).
	jnl journal.Journal
}

// New builds a Medea instance over a cluster, with the given LRA
// algorithm and task queues.
func New(c *cluster.Cluster, alg lra.Algorithm, cfg Config, queues ...taskched.QueueConfig) *Medea {
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Options.SolverBudget == 0 {
		cfg.Options.SolverBudget = cfg.SolverBudget
	}
	if cfg.Options.Clock == nil {
		// The scheduler's clock drives the algorithms too: a virtual-time
		// core must not let solver latency stamps or ILP deadlines read
		// the wall clock.
		cfg.Options.Clock = cfg.Clock
	}
	m := &Medea{
		Cluster:     c,
		Constraints: constraint.NewManager(),
		Tasks:       taskched.New(c, queues...),
		alg:         alg,
		cfg:         cfg,
		deployed:    make(map[string]*deployment),
		owner:       make(map[cluster.ContainerID]string),
		repairs:     make(map[string]*repairReq),
	}
	if cfg.BreakerThreshold >= 0 {
		m.brk = newBreaker(alg, cfg.breakerThreshold(), cfg.breakerCooldown(), &m.Pipeline)
	}
	return m
}

// Algorithm returns the configured LRA placement algorithm.
func (m *Medea) Algorithm() lra.Algorithm { return m.alg }

// AttachJournal makes the scheduler's state durable: every subsequent
// state transition appends a write-ahead record to j, and a full
// checkpoint is written every Config.CheckpointEvery journaled cycles.
// An initial checkpoint of the current state is written immediately, so
// Recover always has a base to replay onto. now stamps that checkpoint.
func (m *Medea) AttachJournal(j journal.Journal, now time.Time) error {
	m.jnl = j
	return j.WriteCheckpoint(m.buildCheckpoint(now))
}

// Journal returns the attached journal (nil when the scheduler is
// volatile).
func (m *Medea) Journal() journal.Journal { return m.jnl }

// JournalLag returns the number of WAL records appended since the last
// checkpoint — the replay tail a recovery would face. It is a
// backpressure signal for admission control: a scheduler whose
// checkpoint cadence cannot keep up should shed load before the replay
// window grows unboundedly. Zero when no journal is attached or the
// backend does not expose lag.
func (m *Medea) JournalLag() int {
	if lg, ok := m.jnl.(journal.Lagger); ok {
		return lg.Lag()
	}
	return 0
}

// Checkpoint forces a full durable-state checkpoint now, independent of
// the CheckpointEvery cadence. The serving layer uses it on graceful
// drain (persist everything before exit) and after operator-constraint
// changes (which have no WAL record of their own). No-op without an
// attached journal.
func (m *Medea) Checkpoint(now time.Time) error {
	if m.jnl == nil {
		return nil
	}
	return m.jnl.WriteCheckpoint(m.buildCheckpoint(now))
}

// SetSolverBudget adjusts the per-cycle solver wall-clock budget at
// runtime. The serving layer uses it for deadline propagation: when
// queued submissions carry request deadlines, the scheduling loop clamps
// the budget to the tightest remaining deadline before running the cycle
// and restores it afterwards. A non-positive d restores the algorithm's
// own default.
func (m *Medea) SetSolverBudget(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.cfg.SolverBudget = d
	m.cfg.Options.SolverBudget = d
}

// SolverBudget returns the currently configured solver budget (zero =
// the algorithm's own default).
func (m *Medea) SolverBudget() time.Duration { return m.cfg.Options.SolverBudget }

// SetSolverMode selects the ILP solving path at runtime — exact
// branch-and-bound, the LP-rounding approximate path, or automatic
// per-instance selection — and toggles the scheduler's cross-cycle
// warm-start memory. Heuristic algorithms ignore both knobs. The DST
// harness flips them mid-run to prove every path yields valid,
// deterministic placements.
func (m *Medea) SetSolverMode(mode ilp.Mode, disableCycleWarm bool) {
	m.cfg.Options.SolverMode = mode
	m.cfg.Options.DisableCycleWarm = disableCycleWarm
}

// SolverMode returns the currently configured ILP solving path.
func (m *Medea) SolverMode() ilp.Mode { return m.cfg.Options.SolverMode }

// logRecord appends one WAL record, fail-stop: a scheduler that cannot
// persist a state transition must not keep applying it.
func (m *Medea) logRecord(r *journal.Record) {
	if m.jnl == nil {
		return
	}
	if err := m.jnl.Append(r); err != nil {
		panic(fmt.Sprintf("medea: journal append failed: %v", err))
	}
}

// buildCheckpoint serialises the scheduler's durable state. All map
// iterations are sorted so identical states produce identical bytes.
func (m *Medea) buildCheckpoint(now time.Time) *journal.Checkpoint {
	cp := &journal.Checkpoint{
		At:        now,
		Cycles:    m.cycles,
		RepairSeq: m.repairSeq,
		TaskSeq:   m.taskSeq,
		NextRun:   m.nextRun,
		Rejected:  append([]string(nil), m.Rejected...),
		Operator:  m.Constraints.Operator(),
		Breaker:   m.breakerSnapshot(),
	}
	for _, pa := range m.pending {
		cp.Pending = append(cp.Pending, journal.PendingApp{App: pa.app, Submit: pa.submit, Retries: pa.retries})
	}
	deployedIDs := make([]string, 0, len(m.deployed))
	for appID := range m.deployed {
		deployedIDs = append(deployedIDs, appID)
	}
	sort.Strings(deployedIDs)
	for _, appID := range deployedIDs {
		dep := m.deployed[appID]
		da := journal.DeployedApp{App: dep.app, DegradedSince: dep.degradedSince}
		for _, id := range dep.order {
			spec := dep.containers[id]
			da.Containers = append(da.Containers, journal.DeployedContainer{
				ID: id, Group: spec.group, Demand: spec.demand, Tags: spec.tags,
			})
		}
		cp.Deployed = append(cp.Deployed, da)
	}
	repairIDs := make([]string, 0, len(m.repairs))
	for appID := range m.repairs {
		repairIDs = append(repairIDs, appID)
	}
	sort.Strings(repairIDs)
	for _, appID := range repairIDs {
		r := m.repairs[appID]
		item := journal.RepairItem{AppID: appID, Attempts: r.attempts, NotBefore: r.notBefore, Since: r.since}
		for _, p := range r.lost {
			item.Lost = append(item.Lost, journal.DeployedContainer{
				ID: p.id, Group: p.spec.group, Demand: p.spec.demand, Tags: p.spec.tags,
			})
		}
		cp.Repairs = append(cp.Repairs, item)
	}
	snap := m.Cluster.TakeSnapshot()
	cp.Cluster = &snap
	return cp
}

// writeCheckpoint persists a checkpoint, fail-stop like logRecord.
func (m *Medea) writeCheckpoint(now time.Time) {
	if err := m.jnl.WriteCheckpoint(m.buildCheckpoint(now)); err != nil {
		panic(fmt.Sprintf("medea: journal checkpoint failed: %v", err))
	}
}

// breakerSnapshot captures the breaker position (nil when disabled).
func (m *Medea) breakerSnapshot() *journal.BreakerState {
	if m.brk == nil {
		return nil
	}
	return m.brk.snapshotState()
}

// SubmitLRA validates an LRA, registers its constraints with the
// constraint manager and queues it for the next scheduling cycle (LRA
// life-cycle steps 1–2, §6).
func (m *Medea) SubmitLRA(app *lra.Application, now time.Time) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if _, ok := m.deployed[app.ID]; ok {
		return fmt.Errorf("core: LRA %s already deployed", app.ID)
	}
	for _, pa := range m.pending {
		if pa.app.ID == app.ID {
			// A second pending copy would double-register constraints and
			// eventually double-place the app, orphaning one copy's
			// containers when m.deployed[id] is overwritten.
			return fmt.Errorf("core: LRA %s already pending", app.ID)
		}
	}
	if err := m.Constraints.AddApplication(app.ID, app.Constraints...); err != nil {
		return err
	}
	m.pending = append(m.pending, &pendingApp{app: app, submit: now})
	m.logRecord(&journal.Record{Kind: journal.KindSubmit, At: now, App: app, AppID: app.ID})
	return nil
}

// SubmitTasks submits a task-based job. In the default two-scheduler
// configuration it goes directly to the task-based scheduler; in ILP-ALL
// mode it is wrapped as constraint-free LRAs and competes inside the LRA
// scheduler (Figure 11b's strawman).
func (m *Medea) SubmitTasks(appID, queue string, now time.Time, reqs ...taskched.TaskRequest) error {
	if !m.cfg.ScheduleTasksViaLRA {
		return m.Tasks.Submit(appID, queue, now, reqs...)
	}
	for _, r := range reqs {
		m.taskSeq++
		app := &lra.Application{
			ID: fmt.Sprintf("%s-task%d", appID, m.taskSeq),
			Groups: []lra.ContainerGroup{{
				Name: "task", Count: r.Count, Demand: r.Demand, Tags: r.Tags,
			}},
		}
		if err := m.SubmitLRA(app, now); err != nil {
			return err
		}
	}
	return nil
}

// PendingLRAs returns the number of LRAs awaiting a scheduling cycle.
func (m *Medea) PendingLRAs() int { return len(m.pending) }

// Capacity summarises the schedulable capacity of the cluster: resources
// free and total on up nodes, and the node availability split. It is the
// self-report a federation scout scores member clusters by — down or
// draining nodes contribute to neither free nor total, so the score
// tracks what a placement could actually use.
func (m *Medea) Capacity() (free, total resource.Vector, up, nodes int) {
	nodes = m.Cluster.NumNodes()
	for _, n := range m.Cluster.Nodes() {
		if !n.Available() {
			continue
		}
		up++
		free = free.Add(n.Free())
		total = total.Add(n.Capacity)
	}
	return free, total, up, nodes
}

// DeployedLRAs returns the number of currently deployed LRAs.
func (m *Medea) DeployedLRAs() int { return len(m.deployed) }

// Deployed reports whether an LRA is deployed, and its live containers
// (in placement order; fewer than the declared count while degraded).
func (m *Medea) Deployed(appID string) ([]cluster.ContainerID, bool) {
	dep, ok := m.deployed[appID]
	if !ok {
		return nil, false
	}
	return append([]cluster.ContainerID(nil), dep.order...), true
}

// CycleStats summarises one LRA scheduling cycle.
type CycleStats struct {
	Batch      int
	Placed     int
	Requeued   int
	Rejected   int
	AlgLatency time.Duration
	// Repaired counts containers restored by the recovery loop this
	// cycle; RepairFailures counts repair batches that failed.
	Repaired       int
	RepairFailures int
	// ValidationRejects counts placements vetoed by commit-time
	// validation this cycle; PanicRecovered reports that the algorithm
	// panicked (the batch was requeued without consuming retries);
	// DeadlineHit reports the solver stopped on its time budget.
	ValidationRejects int
	PanicRecovered    bool
	DeadlineHit       bool
	// Algorithm is the name of the algorithm that served the cycle and
	// Level its degradation-ladder level (0 = the configured algorithm).
	Algorithm string
	Level     int
}

// Tick runs a scheduling cycle if the interval has elapsed. The simulator
// calls this at every event step. Cycle deadlines are anchored on the
// schedule established by the first tick, not on the call time: a tick
// that arrives late (the caller was busy) advances the deadline by whole
// intervals, so cycle boundaries never skew under load, and an idle tick
// leaves the deadline untouched, so work submitted during an idle period
// is scheduled at the next tick rather than a full interval later.
func (m *Medea) Tick(now time.Time) (CycleStats, bool) {
	if m.nextRun.IsZero() {
		m.nextRun = now // first tick anchors the schedule
	}
	if now.Before(m.nextRun) {
		return CycleStats{}, false
	}
	if len(m.pending) == 0 && !m.repairsDue(now) {
		return CycleStats{}, false
	}
	for !m.nextRun.After(now) {
		m.nextRun = m.nextRun.Add(m.cfg.Interval)
	}
	return m.RunCycle(now), true
}

// activeExcluding returns the active constraint entries minus the
// application-sourced entries of the given apps (whose constraints travel
// with the batch itself, to avoid double counting).
func (m *Medea) activeExcluding(exclude map[string]bool) []constraint.Entry {
	var active []constraint.Entry
	for _, e := range m.Constraints.Active() {
		if e.Source == constraint.SourceApplication && exclude[e.AppID] {
			continue
		}
		active = append(active, e)
	}
	return active
}

// safePlace invokes an LRA algorithm with panic isolation: a panicking
// algorithm yields a nil result — callers treat it as a failed cycle —
// with the panic value and stack captured in the pipeline metrics.
func (m *Medea) safePlace(alg lra.Algorithm, apps []*lra.Application, active []constraint.Entry) (res *lra.Result) {
	defer func() {
		if r := recover(); r != nil {
			m.Pipeline.RecordPanic(fmt.Sprintf("%s: %v\n%s", alg.Name(), r, debug.Stack()))
			res = nil
		}
	}()
	return alg.Place(m.Cluster, apps, active, m.cfg.Options)
}

// placeBatch places one cycle's batch. Constraint-independent sub-batches
// (disjoint tag footprints, detected by partitionBatch's union-find) are
// solved concurrently — each solve sees the same pre-cycle cluster state —
// and the per-component results are merged back in submission order, so
// the outcome is identical for every worker count and GOMAXPROCS setting.
// Capacity conflicts the split cannot see are absorbed downstream by
// commit-time validation and the §5.4 requeue path, in deterministic
// submission order. A panic in ANY component fails the cycle whole
// (matching the single-call contract), and algorithms that declare
// themselves SequentialPlacer place the whole batch in one call.
func (m *Medea) placeBatch(alg lra.Algorithm, apps []*lra.Application, active []constraint.Entry) *lra.Result {
	comps := partitionBatch(apps, active)
	if seq, ok := alg.(lra.SequentialPlacer); len(comps) <= 1 || (ok && seq.PlaceSequentially()) {
		return m.safePlace(alg, apps, active)
	}
	results := make([]*lra.Result, len(comps))
	solve := func(ci int) {
		sub := make([]*lra.Application, len(comps[ci]))
		for k, i := range comps[ci] {
			sub[k] = apps[i]
		}
		results[ci] = m.safePlace(alg, sub, active)
	}
	if workers := m.cfg.Options.Workers; workers == 1 {
		for ci := range comps {
			solve(ci)
		}
	} else {
		var wg sync.WaitGroup
		for ci := range comps {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				solve(ci)
			}(ci)
		}
		wg.Wait()
	}
	merged := &lra.Result{Placements: make([]lra.Placement, len(apps))}
	for ci, comp := range comps {
		r := results[ci]
		if r == nil {
			return nil // component panicked: fail the cycle whole
		}
		if len(r.Placements) != len(comp) {
			// Malformed component result: surface an empty (wrong-shaped)
			// result so RunCycle's shape validation requeues the batch.
			return &lra.Result{Latency: r.Latency}
		}
		for k, i := range comp {
			merged.Placements[i] = r.Placements[k]
		}
		if r.Latency > merged.Latency {
			merged.Latency = r.Latency // components ran concurrently: wall-clock is the max
		}
		merged.DeadlineHit = merged.DeadlineHit || r.DeadlineHit
		merged.Exhausted = merged.Exhausted || r.Exhausted
		merged.Invalid = merged.Invalid || r.Invalid
		merged.ExactSolves += r.ExactSolves
		merged.ApproxSolves += r.ApproxSolves
		merged.WarmStarts += r.WarmStarts
	}
	return merged
}

// appEntries wraps an application's own constraints as entries, for
// commit-time validation (the active set excludes batch apps).
func appEntries(app *lra.Application) []constraint.Entry {
	out := make([]constraint.Entry, 0, len(app.Constraints))
	for _, c := range app.Constraints {
		out = append(out, constraint.Entry{
			AppID: app.ID, Source: constraint.SourceApplication, Constraint: c,
		})
	}
	return out
}

// RunCycle invokes the LRA scheduler on the current batch and commits the
// resulting placements through the task-based scheduler (Figure 4 steps
// 1–3). Placements that conflict with the evolved cluster state are
// resubmitted for the next cycle (§5.4). Pending repairs of degraded
// LRAs run first, so restored containers are visible to the batch's
// constraint evaluation.
//
// The cycle runs inside the hardening pipeline: the algorithm is chosen
// by the circuit breaker (possibly a degradation-ladder heuristic),
// invoked with panic isolation, and every proposed placement is validated
// against the live state before commit. A panic requeues the whole batch
// without consuming retry budget; validation rejects consume a retry like
// placement conflicts do. Post-commit, the whole-cluster invariant
// checker runs in the configured audit mode.
func (m *Medea) RunCycle(now time.Time) CycleStats {
	stats := CycleStats{}
	m.cycles++
	if ca, ok := m.alg.(lra.CycleAware); ok {
		// Age the algorithm's cross-cycle memory exactly once per cycle,
		// on the cycle's main goroutine, before any placement runs.
		ca.BeginCycle()
	}
	// Journal the cycle bracket only when there is work: idle cycles
	// change no durable state. The begin-batch record marks the listed
	// pending apps in flight; if the process dies before the matching
	// commit-batch, recovery re-admits them through the pending path.
	journaled := m.jnl != nil && (len(m.pending) > 0 || m.repairsDue(now))
	if journaled {
		ids := make([]string, len(m.pending))
		for i, p := range m.pending {
			ids[i] = p.app.ID
		}
		m.logRecord(&journal.Record{
			Kind: journal.KindBeginBatch, At: now, Cycle: m.cycles, NextRun: m.nextRun, Batch: ids,
		})
	}
	m.runRepairs(now, &stats)

	batch := m.pending
	m.pending = nil
	apps := make([]*lra.Application, len(batch))
	inBatch := make(map[string]bool, len(batch))
	for i, p := range batch {
		apps[i] = p.app
		inBatch[p.app.ID] = true
	}
	stats.Batch = len(batch)
	if len(batch) == 0 {
		m.finishCycle(journaled, now)
		m.auditCycle()
		return stats
	}
	// The batch's own constraints travel with the apps; Active() holds
	// deployed LRAs' and operator constraints. Deployed-app constraints
	// include those of the batch (registered at submit), so exclude the
	// batch apps from the active set to avoid double counting.
	active := m.activeExcluding(inBatch)

	alg, level := m.alg, 0
	if m.brk != nil {
		alg, level = m.brk.algorithm(m.cycles)
	}
	stats.Algorithm = alg.Name()
	stats.Level = level
	if level > 0 {
		m.Pipeline.AddDegradedCycle()
	}

	failed, reason := false, ""
	res := m.placeBatch(alg, apps, active)
	switch {
	case res == nil:
		// Panic: not the batch's fault — requeue it whole, retries
		// untouched; the breaker (not the retry budget) handles a
		// persistently panicking algorithm.
		failed, reason = true, "panic"
		stats.PanicRecovered = true
		m.pending = append(m.pending, batch...)
		stats.Requeued += len(batch)
		m.journalRequeues(batch, now)
	case len(res.Placements) != len(batch):
		// Malformed result shape; indexing it would corrupt accounting.
		failed, reason = true, "validation"
		m.Pipeline.RecordValidationReject(fmt.Sprintf("%s returned %d placements for a batch of %d",
			alg.Name(), len(res.Placements), len(batch)))
		stats.ValidationRejects++
		m.pending = append(m.pending, batch...)
		stats.Requeued += len(batch)
		m.journalRequeues(batch, now)
	default:
		stats.AlgLatency = res.Latency
		stats.DeadlineHit = res.DeadlineHit
		m.Pipeline.AddExactSolves(res.ExactSolves)
		m.Pipeline.AddApproxSolves(res.ApproxSolves)
		m.Pipeline.AddWarmStarts(res.WarmStarts)
		if res.DeadlineHit {
			m.Pipeline.AddDeadlineHit()
		}
		if res.Exhausted {
			m.Pipeline.AddSolverExhaustion()
			failed, reason = true, "exhausted"
		}
		if res.Invalid {
			m.Pipeline.AddInvalidModel()
			failed, reason = true, "invalid-model"
		}
		// entries accumulates the constraints visible to validation:
		// active (deployed + operator) plus batch apps as they commit.
		entries := active
		for i, p := range res.Placements {
			pa := batch[i]
			if !p.Placed {
				// Unplaceable this cycle: retry within budget (resources
				// may free up), then reject.
				m.requeueOrReject(pa, now, &stats)
				continue
			}
			own := appEntries(pa.app)
			all := append(append(make([]constraint.Entry, 0, len(entries)+len(own)), entries...), own...)
			if err := audit.CheckPlacement(m.Cluster, pa.app, &p, all, m.cfg.hardWeight()); err != nil {
				// The algorithm proposed an inadmissible placement:
				// reject it before it corrupts cluster state.
				failed, reason = true, "validation"
				m.Pipeline.RecordValidationReject(err.Error())
				stats.ValidationRejects++
				m.requeueOrReject(pa, now, &stats)
				continue
			}
			// Write-ahead: the placement intent is durable before the
			// cluster mutation. If the process dies mid-commit, recovery
			// compares this intent against cluster truth and either adopts
			// the committed containers or re-queues the app; a failed
			// commit below is compensated by the requeue/reject record.
			m.logRecord(&journal.Record{
				Kind: journal.KindPlace, At: now, AppID: p.AppID, Assignments: p.Assignments,
			})
			commit := make([]taskched.CommitAssignment, len(p.Assignments))
			for j, a := range p.Assignments {
				commit[j] = taskched.CommitAssignment{
					Container: a.Container, Node: a.Node, Demand: a.Demand, Tags: a.Tags,
				}
			}
			if err := m.Tasks.Commit(commit); err != nil {
				// Conflict with task allocations made since the decision:
				// resubmit the LRA (§5.4).
				m.requeueOrReject(pa, now, &stats)
				continue
			}
			dep := &deployment{
				app:        pa.app,
				containers: make(map[cluster.ContainerID]containerSpec, len(p.Assignments)),
			}
			for _, a := range p.Assignments {
				dep.containers[a.Container] = containerSpec{group: a.Group, demand: a.Demand, tags: a.Tags}
				dep.order = append(dep.order, a.Container)
				m.owner[a.Container] = p.AppID
			}
			m.deployed[p.AppID] = dep
			m.LRALatencies = append(m.LRALatencies, now.Sub(pa.submit)+res.Latency)
			stats.Placed++
			entries = append(entries, own...)
		}
	}
	if m.brk != nil {
		m.brk.report(m.cycles, failed, reason)
	}
	m.finishCycle(journaled, now)
	m.auditCycle()
	return stats
}

// finishCycle closes a journaled cycle: the commit-batch record resolves
// every in-flight placement intent into deployed state (and carries the
// breaker position), then the periodic checkpoint runs on its cadence.
func (m *Medea) finishCycle(journaled bool, now time.Time) {
	if !journaled {
		return
	}
	m.logRecord(&journal.Record{
		Kind: journal.KindCommitBatch, At: now, Cycle: m.cycles, Breaker: m.breakerSnapshot(),
	})
	if every := m.cfg.checkpointEvery(); every > 0 && m.cycles%every == 0 {
		m.writeCheckpoint(now)
	}
}

// journalRequeues records a whole-batch requeue (panic or malformed
// result) with each app's retry count unchanged.
func (m *Medea) journalRequeues(batch []*pendingApp, now time.Time) {
	for _, pa := range batch {
		m.logRecord(&journal.Record{
			Kind: journal.KindRequeue, At: now, AppID: pa.app.ID, Retries: pa.retries,
		})
	}
}

// auditCycle runs the post-commit whole-cluster invariant checker in the
// configured audit mode.
func (m *Medea) auditCycle() {
	if m.cfg.Audit == audit.Off {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		m.Pipeline.RecordInvariantViolation(err.Error())
		if m.cfg.Audit == audit.FailFast {
			panic(fmt.Sprintf("medea: invariant violation after cycle %d: %v", m.cycles, err))
		}
	}
}

// CheckInvariants verifies whole-cluster invariants: cluster bookkeeping
// self-consistency and per-node capacity (cluster.CheckAccounting),
// non-negative task-queue accounting, constraint registry ⊆ known
// applications (deployed or pending), and owner-map ↔ deployment
// consistency. It returns the first violation found, or nil.
func (m *Medea) CheckInvariants() error {
	known := func(appID string) bool {
		if _, ok := m.deployed[appID]; ok {
			return true
		}
		for _, p := range m.pending {
			if p.app.ID == appID {
				return true
			}
		}
		return false
	}
	if err := audit.CheckCluster(m.Cluster, m.Tasks, m.Constraints.Apps(), known); err != nil {
		return err
	}
	for id, appID := range m.owner {
		if _, ok := m.Cluster.ContainerNode(id); !ok {
			return fmt.Errorf("core: owner map references unallocated container %s (app %s)", id, appID)
		}
		dep := m.deployed[appID]
		if dep == nil {
			return fmt.Errorf("core: owner map references undeployed app %s (container %s)", appID, id)
		}
		if _, ok := dep.containers[id]; !ok {
			return fmt.Errorf("core: container %s owned by %s but missing from its deployment", id, appID)
		}
	}
	for appID, dep := range m.deployed {
		for id := range dep.containers {
			if m.owner[id] != appID {
				return fmt.Errorf("core: deployed container %s of %s not in owner map", id, appID)
			}
		}
	}
	return nil
}

func (m *Medea) requeueOrReject(pa *pendingApp, now time.Time, stats *CycleStats) {
	pa.retries++
	if pa.retries > m.cfg.maxRetries() {
		m.Constraints.RemoveApplication(pa.app.ID)
		m.Rejected = append(m.Rejected, pa.app.ID)
		stats.Rejected++
		m.logRecord(&journal.Record{Kind: journal.KindReject, At: now, AppID: pa.app.ID})
		return
	}
	m.pending = append(m.pending, pa)
	stats.Requeued++
	// The persisted retry count is the consumed budget: a recovery
	// replaying this record resumes with pa.retries already spent rather
	// than granting a fresh budget.
	m.logRecord(&journal.Record{Kind: journal.KindRequeue, At: now, AppID: pa.app.ID, Retries: pa.retries})
}

// WithdrawLRA withdraws a queued LRA before any cycle places it: the app
// leaves the pending queue, its constraints are unregistered and the
// removal is journaled (replay drops the pending entry the submit record
// re-created). It reports whether the app was pending. The serving
// layer's DELETE path uses it so an app that drained into the core but
// has not deployed yet can still be removed.
func (m *Medea) WithdrawLRA(appID string, now time.Time) bool {
	for i, pa := range m.pending {
		if pa.app.ID != appID {
			continue
		}
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
		delete(m.repairs, appID)
		m.Constraints.RemoveApplication(appID)
		m.logRecord(&journal.Record{Kind: journal.KindRemove, At: now, AppID: appID})
		return true
	}
	return false
}

// RemoveLRA tears an LRA down: releases its containers, drops its
// constraints and cancels any pending repair. The teardown intent is
// journaled before the first release, so a crash mid-teardown rolls
// forward: recovery drops the LRA and the orphan sweep releases whatever
// containers the crashed process left behind.
func (m *Medea) RemoveLRA(appID string) error {
	dep, ok := m.deployed[appID]
	if !ok {
		return fmt.Errorf("core: LRA %s not deployed", appID)
	}
	m.logRecord(&journal.Record{Kind: journal.KindRemove, AppID: appID})
	for _, id := range dep.order {
		if err := m.Cluster.Release(id); err != nil {
			return err
		}
		delete(m.owner, id)
	}
	delete(m.deployed, appID)
	delete(m.repairs, appID)
	m.Constraints.RemoveApplication(appID)
	return nil
}

// DeployedApps returns the IDs of all deployed LRAs, sorted.
func (m *Medea) DeployedApps() []string {
	out := make([]string, 0, len(m.deployed))
	for appID := range m.deployed {
		out = append(out, appID)
	}
	sort.Strings(out)
	return out
}

// PendingApps returns the IDs of queued LRAs in queue order.
func (m *Medea) PendingApps() []string {
	out := make([]string, 0, len(m.pending))
	for _, pa := range m.pending {
		out = append(out, pa.app.ID)
	}
	return out
}

// PendingRetries returns the consumed retry budget of a queued LRA
// (0, false when the app is not pending).
func (m *Medea) PendingRetries(appID string) (int, bool) {
	for _, pa := range m.pending {
		if pa.app.ID == appID {
			return pa.retries, true
		}
	}
	return 0, false
}

// PendingRepairPieces returns, per degraded LRA, the container IDs
// awaiting repair (IDs sorted per app).
func (m *Medea) PendingRepairPieces() map[string][]cluster.ContainerID {
	out := make(map[string][]cluster.ContainerID, len(m.repairs))
	for appID, r := range m.repairs {
		ids := make([]cluster.ContainerID, 0, len(r.lost))
		for _, p := range r.lost {
			ids = append(ids, p.id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[appID] = ids
	}
	return out
}

// RepairBudget returns the consumed attempt count of a pending repair
// (0, false when the app has none).
func (m *Medea) RepairBudget(appID string) (int, bool) {
	r, ok := m.repairs[appID]
	if !ok {
		return 0, false
	}
	return r.attempts, true
}

// ActiveEntries returns all currently registered constraints (deployed
// LRAs + operator), for violation evaluation.
func (m *Medea) ActiveEntries() []constraint.Entry { return m.Constraints.Active() }

// Rebalance runs the reactive container-migration planner (§5.4) over the
// deployed LRAs and applies the resulting moves. Task containers never
// move — only LRA containers Medea itself placed. It returns the applied
// plan; moves that fail to re-commit (lost races with task allocations)
// roll back to their original node and are dropped from the plan.
func (m *Medea) Rebalance(opts lra.MigrationOptions) *lra.MigrationPlan {
	if opts.Clock == nil {
		opts.Clock = m.cfg.Clock
	}
	prev := opts.Movable
	opts.Movable = func(id cluster.ContainerID) bool {
		if _, lraOwned := m.owner[id]; !lraOwned {
			return false
		}
		return prev == nil || prev(id)
	}
	plan := lra.PlanMigration(m.Cluster, m.Constraints.Active(), opts)
	applied := plan.Moves[:0]
	for _, mv := range plan.Moves {
		tags, _ := m.Cluster.ContainerTags(mv.Container)
		demand := m.Cluster.ContainerDemand(mv.Container)
		if err := m.Cluster.Release(mv.Container); err != nil {
			continue
		}
		if err := m.Cluster.Allocate(mv.To, mv.Container, demand, tags); err != nil {
			if rerr := m.Cluster.Allocate(mv.From, mv.Container, demand, tags); rerr != nil {
				panic(rerr) // unreachable: restoring the just-released container
			}
			continue
		}
		applied = append(applied, mv)
	}
	plan.Moves = applied
	return plan
}
