// Package core wires Medea together: the two-scheduler design of §3
// (Figure 4). LRAs submitted through the rich constraint interface are
// batched and placed by the LRA scheduler at regular scheduling intervals;
// task-based jobs go straight to the task-based scheduler. All actual
// allocations flow through the task-based scheduler, which makes it the
// single writer of cluster state and sidesteps the conflicting-placement
// problem of multi-level schedulers (§5.4).
package core

import (
	"fmt"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/lra"
	"medea/internal/metrics"
	"medea/internal/resource"
	"medea/internal/taskched"
)

// Config parameterises a Medea instance.
type Config struct {
	// Interval is the LRA scheduling interval (§5.1); longer intervals
	// batch more LRAs per cycle, improving placement quality at the cost
	// of LRA scheduling latency. Default 10s (§7.1).
	Interval time.Duration
	// Options are passed to the LRA algorithm.
	Options lra.Options
	// MaxRetries bounds LRA resubmission after placement conflicts (§5.4).
	// The zero value selects the default of 3; a negative value disables
	// retries entirely (an LRA that fails its first cycle is rejected) —
	// without the sentinel, "no retries" would be unexpressible.
	MaxRetries int
	// ScheduleTasksViaLRA turns the instance into the ILP-ALL strawman of
	// §7.5 (Figure 11b): task requests are converted into single-group
	// LRAs and routed through the LRA scheduler, abandoning the
	// two-scheduler split.
	ScheduleTasksViaLRA bool

	// RepairMaxRetries bounds repair attempts per degraded LRA after node
	// failures before the repair is abandoned (zero = 5, negative = no
	// retries: one attempt only).
	RepairMaxRetries int
	// RepairBackoff is the base delay between repair attempts for one
	// LRA; consecutive failures back off exponentially from it (zero =
	// Interval).
	RepairBackoff time.Duration
	// RepairBackoffMax caps the exponential repair backoff (zero = 8 ×
	// RepairBackoff).
	RepairBackoffMax time.Duration
	// RepairFallbackAfter is the number of consecutive failed repair
	// attempts for one LRA after which its repair batch is placed with
	// the greedy Medea-NC heuristic instead of the configured algorithm —
	// graceful degradation when the ILP repeatedly times out or conflicts
	// (zero = 2, negative = never fall back).
	RepairFallbackAfter int
}

// maxRetries resolves the MaxRetries sentinel: 0 → default 3, negative →
// no retries.
func (c Config) maxRetries() int {
	if c.MaxRetries == 0 {
		return 3
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c Config) repairMaxRetries() int {
	if c.RepairMaxRetries == 0 {
		return 5
	}
	if c.RepairMaxRetries < 0 {
		return 0
	}
	return c.RepairMaxRetries
}

func (c Config) repairBackoff() time.Duration {
	if c.RepairBackoff > 0 {
		return c.RepairBackoff
	}
	return c.Interval
}

func (c Config) repairBackoffMax() time.Duration {
	if c.RepairBackoffMax > 0 {
		return c.RepairBackoffMax
	}
	return 8 * c.repairBackoff()
}

// repairFallbackAfter resolves the fallback threshold; -1 means never.
func (c Config) repairFallbackAfter() int {
	if c.RepairFallbackAfter == 0 {
		return 2
	}
	if c.RepairFallbackAfter < 0 {
		return -1
	}
	return c.RepairFallbackAfter
}

type pendingApp struct {
	app     *lra.Application
	submit  time.Time
	retries int
}

// containerSpec is what core remembers about one live LRA container, so
// an equivalent replacement can be requested after an eviction.
type containerSpec struct {
	group  string
	demand resource.Vector
	tags   []constraint.Tag // effective tags, incl. the appID tag
}

// deployment is the live state of one placed LRA.
type deployment struct {
	app        *lra.Application
	containers map[cluster.ContainerID]containerSpec
	order      []cluster.ContainerID // placement order, for Deployed
	// degradedSince is the wall-clock start of the current degradation
	// window (zero when the LRA is at full strength).
	degradedSince time.Time
}

// Medea is the cluster scheduler.
type Medea struct {
	Cluster     *cluster.Cluster
	Constraints *constraint.Manager
	Tasks       *taskched.Scheduler

	alg     lra.Algorithm
	cfg     Config
	pending []*pendingApp
	nextRun time.Time

	deployed map[string]*deployment
	owner    map[cluster.ContainerID]string // live LRA container -> appID

	// repairs holds at most one pending repair request per degraded LRA.
	repairs   map[string]*repairReq
	repairSeq int
	// repairFallback is the degraded-mode heuristic (lazily built).
	repairFallback lra.Algorithm

	// Recovery aggregates failure-recovery counters (evictions, repairs,
	// MTTR, degraded time per LRA).
	Recovery metrics.RecoveryStats

	// LRALatencies records submission-to-commit latency per placed LRA.
	LRALatencies []time.Duration
	// Rejected lists LRAs dropped after exhausting conflict retries or
	// found unplaceable.
	Rejected []string
	// taskSeq names synthetic task LRAs in ILP-ALL mode.
	taskSeq int
}

// New builds a Medea instance over a cluster, with the given LRA
// algorithm and task queues.
func New(c *cluster.Cluster, alg lra.Algorithm, cfg Config, queues ...taskched.QueueConfig) *Medea {
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	return &Medea{
		Cluster:     c,
		Constraints: constraint.NewManager(),
		Tasks:       taskched.New(c, queues...),
		alg:         alg,
		cfg:         cfg,
		deployed:    make(map[string]*deployment),
		owner:       make(map[cluster.ContainerID]string),
		repairs:     make(map[string]*repairReq),
	}
}

// Algorithm returns the configured LRA placement algorithm.
func (m *Medea) Algorithm() lra.Algorithm { return m.alg }

// SubmitLRA validates an LRA, registers its constraints with the
// constraint manager and queues it for the next scheduling cycle (LRA
// life-cycle steps 1–2, §6).
func (m *Medea) SubmitLRA(app *lra.Application, now time.Time) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if _, ok := m.deployed[app.ID]; ok {
		return fmt.Errorf("core: LRA %s already deployed", app.ID)
	}
	if err := m.Constraints.AddApplication(app.ID, app.Constraints...); err != nil {
		return err
	}
	m.pending = append(m.pending, &pendingApp{app: app, submit: now})
	return nil
}

// SubmitTasks submits a task-based job. In the default two-scheduler
// configuration it goes directly to the task-based scheduler; in ILP-ALL
// mode it is wrapped as constraint-free LRAs and competes inside the LRA
// scheduler (Figure 11b's strawman).
func (m *Medea) SubmitTasks(appID, queue string, now time.Time, reqs ...taskched.TaskRequest) error {
	if !m.cfg.ScheduleTasksViaLRA {
		return m.Tasks.Submit(appID, queue, now, reqs...)
	}
	for _, r := range reqs {
		m.taskSeq++
		app := &lra.Application{
			ID: fmt.Sprintf("%s-task%d", appID, m.taskSeq),
			Groups: []lra.ContainerGroup{{
				Name: "task", Count: r.Count, Demand: r.Demand, Tags: r.Tags,
			}},
		}
		if err := m.SubmitLRA(app, now); err != nil {
			return err
		}
	}
	return nil
}

// PendingLRAs returns the number of LRAs awaiting a scheduling cycle.
func (m *Medea) PendingLRAs() int { return len(m.pending) }

// Deployed reports whether an LRA is deployed, and its live containers
// (in placement order; fewer than the declared count while degraded).
func (m *Medea) Deployed(appID string) ([]cluster.ContainerID, bool) {
	dep, ok := m.deployed[appID]
	if !ok {
		return nil, false
	}
	return append([]cluster.ContainerID(nil), dep.order...), true
}

// CycleStats summarises one LRA scheduling cycle.
type CycleStats struct {
	Batch      int
	Placed     int
	Requeued   int
	Rejected   int
	AlgLatency time.Duration
	// Repaired counts containers restored by the recovery loop this
	// cycle; RepairFailures counts repair batches that failed.
	Repaired       int
	RepairFailures int
}

// Tick runs a scheduling cycle if the interval has elapsed. The simulator
// calls this at every event step. Cycle deadlines are anchored on the
// schedule established by the first tick, not on the call time: a tick
// that arrives late (the caller was busy) advances the deadline by whole
// intervals, so cycle boundaries never skew under load, and an idle tick
// leaves the deadline untouched, so work submitted during an idle period
// is scheduled at the next tick rather than a full interval later.
func (m *Medea) Tick(now time.Time) (CycleStats, bool) {
	if m.nextRun.IsZero() {
		m.nextRun = now // first tick anchors the schedule
	}
	if now.Before(m.nextRun) {
		return CycleStats{}, false
	}
	if len(m.pending) == 0 && !m.repairsDue(now) {
		return CycleStats{}, false
	}
	for !m.nextRun.After(now) {
		m.nextRun = m.nextRun.Add(m.cfg.Interval)
	}
	return m.RunCycle(now), true
}

// activeExcluding returns the active constraint entries minus the
// application-sourced entries of the given apps (whose constraints travel
// with the batch itself, to avoid double counting).
func (m *Medea) activeExcluding(exclude map[string]bool) []constraint.Entry {
	var active []constraint.Entry
	for _, e := range m.Constraints.Active() {
		if e.Source == constraint.SourceApplication && exclude[e.AppID] {
			continue
		}
		active = append(active, e)
	}
	return active
}

// RunCycle invokes the LRA scheduler on the current batch and commits the
// resulting placements through the task-based scheduler (Figure 4 steps
// 1–3). Placements that conflict with the evolved cluster state are
// resubmitted for the next cycle (§5.4). Pending repairs of degraded
// LRAs run first, so restored containers are visible to the batch's
// constraint evaluation.
func (m *Medea) RunCycle(now time.Time) CycleStats {
	stats := CycleStats{}
	m.runRepairs(now, &stats)

	batch := m.pending
	m.pending = nil
	apps := make([]*lra.Application, len(batch))
	inBatch := make(map[string]bool, len(batch))
	for i, p := range batch {
		apps[i] = p.app
		inBatch[p.app.ID] = true
	}
	stats.Batch = len(batch)
	if len(batch) == 0 {
		return stats
	}
	// The batch's own constraints travel with the apps; Active() holds
	// deployed LRAs' and operator constraints. Deployed-app constraints
	// include those of the batch (registered at submit), so exclude the
	// batch apps from the active set to avoid double counting.
	active := m.activeExcluding(inBatch)

	res := m.alg.Place(m.Cluster, apps, active, m.cfg.Options)
	stats.AlgLatency = res.Latency
	for i, p := range res.Placements {
		pa := batch[i]
		if !p.Placed {
			// Unplaceable this cycle: retry within budget (resources may
			// free up), then reject.
			m.requeueOrReject(pa, &stats)
			continue
		}
		commit := make([]taskched.CommitAssignment, len(p.Assignments))
		for j, a := range p.Assignments {
			commit[j] = taskched.CommitAssignment{
				Container: a.Container, Node: a.Node, Demand: a.Demand, Tags: a.Tags,
			}
		}
		if err := m.Tasks.Commit(commit); err != nil {
			// Conflict with task allocations made since the decision:
			// resubmit the LRA (§5.4).
			m.requeueOrReject(pa, &stats)
			continue
		}
		dep := &deployment{
			app:        pa.app,
			containers: make(map[cluster.ContainerID]containerSpec, len(p.Assignments)),
		}
		for _, a := range p.Assignments {
			dep.containers[a.Container] = containerSpec{group: a.Group, demand: a.Demand, tags: a.Tags}
			dep.order = append(dep.order, a.Container)
			m.owner[a.Container] = p.AppID
		}
		m.deployed[p.AppID] = dep
		m.LRALatencies = append(m.LRALatencies, now.Sub(pa.submit)+res.Latency)
		stats.Placed++
	}
	return stats
}

func (m *Medea) requeueOrReject(pa *pendingApp, stats *CycleStats) {
	pa.retries++
	if pa.retries > m.cfg.maxRetries() {
		m.Constraints.RemoveApplication(pa.app.ID)
		m.Rejected = append(m.Rejected, pa.app.ID)
		stats.Rejected++
		return
	}
	m.pending = append(m.pending, pa)
	stats.Requeued++
}

// RemoveLRA tears an LRA down: releases its containers, drops its
// constraints and cancels any pending repair.
func (m *Medea) RemoveLRA(appID string) error {
	dep, ok := m.deployed[appID]
	if !ok {
		return fmt.Errorf("core: LRA %s not deployed", appID)
	}
	for _, id := range dep.order {
		if err := m.Cluster.Release(id); err != nil {
			return err
		}
		delete(m.owner, id)
	}
	delete(m.deployed, appID)
	delete(m.repairs, appID)
	m.Constraints.RemoveApplication(appID)
	return nil
}

// ActiveEntries returns all currently registered constraints (deployed
// LRAs + operator), for violation evaluation.
func (m *Medea) ActiveEntries() []constraint.Entry { return m.Constraints.Active() }

// Rebalance runs the reactive container-migration planner (§5.4) over the
// deployed LRAs and applies the resulting moves. Task containers never
// move — only LRA containers Medea itself placed. It returns the applied
// plan; moves that fail to re-commit (lost races with task allocations)
// roll back to their original node and are dropped from the plan.
func (m *Medea) Rebalance(opts lra.MigrationOptions) *lra.MigrationPlan {
	prev := opts.Movable
	opts.Movable = func(id cluster.ContainerID) bool {
		if _, lraOwned := m.owner[id]; !lraOwned {
			return false
		}
		return prev == nil || prev(id)
	}
	plan := lra.PlanMigration(m.Cluster, m.Constraints.Active(), opts)
	applied := plan.Moves[:0]
	for _, mv := range plan.Moves {
		tags, _ := m.Cluster.ContainerTags(mv.Container)
		demand := m.Cluster.ContainerDemand(mv.Container)
		if err := m.Cluster.Release(mv.Container); err != nil {
			continue
		}
		if err := m.Cluster.Allocate(mv.To, mv.Container, demand, tags); err != nil {
			if rerr := m.Cluster.Allocate(mv.From, mv.Container, demand, tags); rerr != nil {
				panic(rerr) // unreachable: restoring the just-released container
			}
			continue
		}
		applied = append(applied, mv)
	}
	plan.Moves = applied
	return plan
}
