// Package core wires Medea together: the two-scheduler design of §3
// (Figure 4). LRAs submitted through the rich constraint interface are
// batched and placed by the LRA scheduler at regular scheduling intervals;
// task-based jobs go straight to the task-based scheduler. All actual
// allocations flow through the task-based scheduler, which makes it the
// single writer of cluster state and sidesteps the conflicting-placement
// problem of multi-level schedulers (§5.4).
package core

import (
	"fmt"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/lra"
	"medea/internal/taskched"
)

// Config parameterises a Medea instance.
type Config struct {
	// Interval is the LRA scheduling interval (§5.1); longer intervals
	// batch more LRAs per cycle, improving placement quality at the cost
	// of LRA scheduling latency. Default 10s (§7.1).
	Interval time.Duration
	// Options are passed to the LRA algorithm.
	Options lra.Options
	// MaxRetries bounds LRA resubmission after placement conflicts (§5.4);
	// default 3.
	MaxRetries int
	// ScheduleTasksViaLRA turns the instance into the ILP-ALL strawman of
	// §7.5 (Figure 11b): task requests are converted into single-group
	// LRAs and routed through the LRA scheduler, abandoning the
	// two-scheduler split.
	ScheduleTasksViaLRA bool
}

type pendingApp struct {
	app     *lra.Application
	submit  time.Time
	retries int
}

// Medea is the cluster scheduler.
type Medea struct {
	Cluster     *cluster.Cluster
	Constraints *constraint.Manager
	Tasks       *taskched.Scheduler

	alg     lra.Algorithm
	cfg     Config
	pending []*pendingApp
	nextRun time.Time

	deployed map[string][]cluster.ContainerID

	// LRALatencies records submission-to-commit latency per placed LRA.
	LRALatencies []time.Duration
	// Rejected lists LRAs dropped after exhausting conflict retries or
	// found unplaceable.
	Rejected []string
	// taskSeq names synthetic task LRAs in ILP-ALL mode.
	taskSeq int
}

// New builds a Medea instance over a cluster, with the given LRA
// algorithm and task queues.
func New(c *cluster.Cluster, alg lra.Algorithm, cfg Config, queues ...taskched.QueueConfig) *Medea {
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	return &Medea{
		Cluster:     c,
		Constraints: constraint.NewManager(),
		Tasks:       taskched.New(c, queues...),
		alg:         alg,
		cfg:         cfg,
		deployed:    make(map[string][]cluster.ContainerID),
	}
}

// Algorithm returns the configured LRA placement algorithm.
func (m *Medea) Algorithm() lra.Algorithm { return m.alg }

// SubmitLRA validates an LRA, registers its constraints with the
// constraint manager and queues it for the next scheduling cycle (LRA
// life-cycle steps 1–2, §6).
func (m *Medea) SubmitLRA(app *lra.Application, now time.Time) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if _, ok := m.deployed[app.ID]; ok {
		return fmt.Errorf("core: LRA %s already deployed", app.ID)
	}
	if err := m.Constraints.AddApplication(app.ID, app.Constraints...); err != nil {
		return err
	}
	m.pending = append(m.pending, &pendingApp{app: app, submit: now})
	return nil
}

// SubmitTasks submits a task-based job. In the default two-scheduler
// configuration it goes directly to the task-based scheduler; in ILP-ALL
// mode it is wrapped as constraint-free LRAs and competes inside the LRA
// scheduler (Figure 11b's strawman).
func (m *Medea) SubmitTasks(appID, queue string, now time.Time, reqs ...taskched.TaskRequest) error {
	if !m.cfg.ScheduleTasksViaLRA {
		return m.Tasks.Submit(appID, queue, now, reqs...)
	}
	for _, r := range reqs {
		m.taskSeq++
		app := &lra.Application{
			ID: fmt.Sprintf("%s-task%d", appID, m.taskSeq),
			Groups: []lra.ContainerGroup{{
				Name: "task", Count: r.Count, Demand: r.Demand, Tags: r.Tags,
			}},
		}
		if err := m.SubmitLRA(app, now); err != nil {
			return err
		}
	}
	return nil
}

// PendingLRAs returns the number of LRAs awaiting a scheduling cycle.
func (m *Medea) PendingLRAs() int { return len(m.pending) }

// Deployed reports whether an LRA is fully deployed, and its containers.
func (m *Medea) Deployed(appID string) ([]cluster.ContainerID, bool) {
	ids, ok := m.deployed[appID]
	return ids, ok
}

// CycleStats summarises one LRA scheduling cycle.
type CycleStats struct {
	Batch      int
	Placed     int
	Requeued   int
	Rejected   int
	AlgLatency time.Duration
}

// Tick runs a scheduling cycle if the interval has elapsed. The simulator
// calls this at every event step.
func (m *Medea) Tick(now time.Time) (CycleStats, bool) {
	if now.Before(m.nextRun) {
		return CycleStats{}, false
	}
	m.nextRun = now.Add(m.cfg.Interval)
	if len(m.pending) == 0 {
		return CycleStats{}, false
	}
	return m.RunCycle(now), true
}

// RunCycle invokes the LRA scheduler on the current batch and commits the
// resulting placements through the task-based scheduler (Figure 4 steps
// 1–3). Placements that conflict with the evolved cluster state are
// resubmitted for the next cycle (§5.4).
func (m *Medea) RunCycle(now time.Time) CycleStats {
	batch := m.pending
	m.pending = nil
	apps := make([]*lra.Application, len(batch))
	for i, p := range batch {
		apps[i] = p.app
	}
	// The batch's own constraints travel with the apps; Active() holds
	// deployed LRAs' and operator constraints. Deployed-app constraints
	// include those of the batch (registered at submit), so exclude the
	// batch apps from the active set to avoid double counting.
	inBatch := make(map[string]bool, len(apps))
	for _, a := range apps {
		inBatch[a.ID] = true
	}
	var active []constraint.Entry
	for _, e := range m.Constraints.Active() {
		if e.Source == constraint.SourceApplication && inBatch[e.AppID] {
			continue
		}
		active = append(active, e)
	}

	res := m.alg.Place(m.Cluster, apps, active, m.cfg.Options)
	stats := CycleStats{Batch: len(batch), AlgLatency: res.Latency}
	for i, p := range res.Placements {
		pa := batch[i]
		if !p.Placed {
			// Unplaceable this cycle: retry within budget (resources may
			// free up), then reject.
			m.requeueOrReject(pa, &stats)
			continue
		}
		commit := make([]taskched.CommitAssignment, len(p.Assignments))
		for j, a := range p.Assignments {
			commit[j] = taskched.CommitAssignment{
				Container: a.Container, Node: a.Node, Demand: a.Demand, Tags: a.Tags,
			}
		}
		if err := m.Tasks.Commit(commit); err != nil {
			// Conflict with task allocations made since the decision:
			// resubmit the LRA (§5.4).
			m.requeueOrReject(pa, &stats)
			continue
		}
		ids := make([]cluster.ContainerID, len(p.Assignments))
		for j, a := range p.Assignments {
			ids[j] = a.Container
		}
		m.deployed[p.AppID] = ids
		m.LRALatencies = append(m.LRALatencies, now.Sub(pa.submit)+res.Latency)
		stats.Placed++
	}
	return stats
}

func (m *Medea) requeueOrReject(pa *pendingApp, stats *CycleStats) {
	pa.retries++
	if pa.retries > m.cfg.MaxRetries {
		m.Constraints.RemoveApplication(pa.app.ID)
		m.Rejected = append(m.Rejected, pa.app.ID)
		stats.Rejected++
		return
	}
	m.pending = append(m.pending, pa)
	stats.Requeued++
}

// RemoveLRA tears an LRA down: releases its containers and drops its
// constraints.
func (m *Medea) RemoveLRA(appID string) error {
	ids, ok := m.deployed[appID]
	if !ok {
		return fmt.Errorf("core: LRA %s not deployed", appID)
	}
	for _, id := range ids {
		if err := m.Cluster.Release(id); err != nil {
			return err
		}
	}
	delete(m.deployed, appID)
	m.Constraints.RemoveApplication(appID)
	return nil
}

// ActiveEntries returns all currently registered constraints (deployed
// LRAs + operator), for violation evaluation.
func (m *Medea) ActiveEntries() []constraint.Entry { return m.Constraints.Active() }

// Rebalance runs the reactive container-migration planner (§5.4) over the
// deployed LRAs and applies the resulting moves. Task containers never
// move — only LRA containers Medea itself placed. It returns the applied
// plan; moves that fail to re-commit (lost races with task allocations)
// roll back to their original node and are dropped from the plan.
func (m *Medea) Rebalance(opts lra.MigrationOptions) *lra.MigrationPlan {
	lraOwned := make(map[cluster.ContainerID]bool)
	for _, ids := range m.deployed {
		for _, id := range ids {
			lraOwned[id] = true
		}
	}
	prev := opts.Movable
	opts.Movable = func(id cluster.ContainerID) bool {
		if !lraOwned[id] {
			return false
		}
		return prev == nil || prev(id)
	}
	plan := lra.PlanMigration(m.Cluster, m.Constraints.Active(), opts)
	applied := plan.Moves[:0]
	for _, mv := range plan.Moves {
		tags, _ := m.Cluster.ContainerTags(mv.Container)
		demand := m.Cluster.ContainerDemand(mv.Container)
		if err := m.Cluster.Release(mv.Container); err != nil {
			continue
		}
		if err := m.Cluster.Allocate(mv.To, mv.Container, demand, tags); err != nil {
			if rerr := m.Cluster.Allocate(mv.From, mv.Container, demand, tags); rerr != nil {
				panic(rerr) // unreachable: restoring the just-released container
			}
			continue
		}
		applied = append(applied, mv)
	}
	plan.Moves = applied
	return plan
}
