// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per experiment, plus ablation benches for the
// design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment end to end at the
// default reduced scale; `medea-sim -scale 1 <fig>` runs paper-scale.
package medea_test

import (
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/experiments"
	"medea/internal/lra"
	"medea/internal/resource"
	"medea/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, Scale: 0.2, SolverBudget: 300 * time.Millisecond}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig1(benchOpts()); tab.NumRows() != 6 {
			b.Fatal("fig1 rows")
		}
	}
}

func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig2a(benchOpts()); tab.NumRows() != 3 {
			b.Fatal("fig2a rows")
		}
	}
}

func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig2b(benchOpts()); tab.NumRows() != 6 {
			b.Fatal("fig2b rows")
		}
	}
}

func BenchmarkFig2c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig2c(benchOpts()); tab.NumRows() != 5 {
			b.Fatal("fig2c rows")
		}
	}
}

func BenchmarkFig2d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig2d(benchOpts()); tab.NumRows() != 5 {
			b.Fatal("fig2d rows")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig3(benchOpts()); tab.NumRows() == 0 {
			b.Fatal("fig3 rows")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunTable1(benchOpts()); tab.NumRows() != 9 {
			b.Fatal("table1 rows")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig7(benchOpts())
		if len(res.Tables()) != 4 {
			b.Fatal("fig7 tables")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig8(benchOpts()); tab.NumRows() != 2 {
			b.Fatal("fig8 rows")
		}
	}
}

func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig9a(benchOpts()); tab.NumRows() != 5 {
			b.Fatal("fig9a rows")
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig9b(benchOpts()); tab.NumRows() != 6 {
			b.Fatal("fig9b rows")
		}
	}
}

func BenchmarkFig9c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig9c(benchOpts()); tab.NumRows() != 6 {
			b.Fatal("fig9c rows")
		}
	}
}

func BenchmarkFig9d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig9d(benchOpts()); tab.NumRows() != 6 {
			b.Fatal("fig9d rows")
		}
	}
}

func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.RunFig10(benchOpts()); res.Fragmentation.NumRows() != 5 {
			b.Fatal("fig10a rows")
		}
	}
}

func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.RunFig10(benchOpts()); res.LoadBalance.NumRows() != 5 {
			b.Fatal("fig10b rows")
		}
	}
}

func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig11a(benchOpts()); tab.NumRows() == 0 {
			b.Fatal("fig11a rows")
		}
	}
}

func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig11b(benchOpts()); tab.NumRows() != 5 {
			b.Fatal("fig11b rows")
		}
	}
}

func BenchmarkFig11c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunFig11c(benchOpts()); tab.NumRows() != 2 {
			b.Fatal("fig11c rows")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// ablationBatch measures the effect of considering multiple LRAs per
// scheduling cycle (the core batching claim behind the ILP design).
func ablationBatch(b *testing.B, perCycle int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.Grid(100, 10, experiments.SimNodeCapacity)
		apps := workload.InterAppBatch(nil, 8, 4, 2, "ab")
		alg := lra.NewILP()
		placeAll(b, c, alg, apps, perCycle)
	}
}

func BenchmarkAblationBatch1(b *testing.B) { ablationBatch(b, 1) }
func BenchmarkAblationBatch4(b *testing.B) { ablationBatch(b, 4) }

// BenchmarkAblationPruning contrasts the default candidate budget with an
// oversized one, showing what pruning buys in solver time.
func BenchmarkAblationPruning(b *testing.B) {
	for _, tc := range []struct {
		name string
		max  int
	}{{"pruned", 0}, {"wide", 400}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.Grid(400, 40, experiments.SimNodeCapacity)
				apps := []*lra.Application{workload.HBase("ab", workload.DefaultHBase())}
				alg := lra.NewILP()
				res := alg.Place(c, apps, nil, lra.Options{
					SolverBudget: 2 * time.Second, MaxCandidates: tc.max,
				})
				if res.PlacedApps() != 1 {
					b.Fatal("unplaced")
				}
			}
		})
	}
}

// BenchmarkAblationWeights sweeps the violation weight w2, the soft-
// constraint knob of Equation 1.
func BenchmarkAblationWeights(b *testing.B) {
	for _, tc := range []struct {
		name string
		w2   float64
	}{{"w2=0.1", 0.1}, {"w2=0.5", 0.5}, {"w2=2.0", 2.0}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.Grid(60, 10, experiments.SimNodeCapacity)
				apps := []*lra.Application{workload.HBase("ab", workload.DefaultHBase())}
				opts := lra.Options{
					Weights:      lra.Weights{W1: 1, W2: tc.w2, W3: 0.25},
					SolverBudget: time.Second,
				}
				if res := lra.NewILP().Place(c, apps, nil, opts); res.PlacedApps() != 1 {
					b.Fatal("unplaced")
				}
			}
		})
	}
}

// BenchmarkAblationTwoSidedScoring contrasts the greedy engine's
// two-sided constraint scoring with Kubernetes' subject-only scoring by
// comparing J-Kube and Serial on a split affinity pair.
func BenchmarkAblationTwoSidedScoring(b *testing.B) {
	for _, tc := range []struct {
		name string
		alg  func() lra.Algorithm
	}{{"two-sided", lra.NewSerial}, {"subject-only", lra.NewJKube}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.Grid(40, 10, experiments.SimNodeCapacity)
				a := &lra.Application{ID: "A", Groups: []lra.ContainerGroup{{
					Name: "w", Count: 4, Demand: resource.WorkerProfile, Tags: []constraint.Tag{"ta"}}},
					Constraints: []constraint.Constraint{
						constraint.New(constraint.Affinity(constraint.E("ta"), constraint.E("tb"), constraint.Node)),
					}}
				bApp := &lra.Application{ID: "B", Groups: []lra.ContainerGroup{{
					Name: "w", Count: 4, Demand: resource.WorkerProfile, Tags: []constraint.Tag{"tb"}}}}
				placeAll(b, c, tc.alg(), []*lra.Application{a, bApp}, 1)
			}
		})
	}
}

// placeAll drives batches through an algorithm directly, committing
// assignments to the cluster.
func placeAll(b *testing.B, c *cluster.Cluster, alg lra.Algorithm, apps []*lra.Application, perCycle int) {
	b.Helper()
	for i := 0; i < len(apps); i += perCycle {
		end := i + perCycle
		if end > len(apps) {
			end = len(apps)
		}
		res := alg.Place(c, apps[i:end], nil, lra.Options{SolverBudget: 300 * time.Millisecond})
		for _, p := range res.Placements {
			for _, asg := range p.Assignments {
				if err := c.Allocate(asg.Node, asg.Container, asg.Demand, asg.Tags); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// Micro-benchmarks of the hot substrate paths.

func BenchmarkILPSolveSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.Grid(50, 10, experiments.SimNodeCapacity)
		apps := []*lra.Application{workload.HBase("m", workload.DefaultHBase())}
		if res := lra.NewILP().Place(c, apps, nil, lra.Options{SolverBudget: time.Second}); res.PlacedApps() != 1 {
			b.Fatal("unplaced")
		}
	}
}

func BenchmarkGreedyPlace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.Grid(500, 50, experiments.SimNodeCapacity)
		apps := []*lra.Application{workload.TensorFlow("m", workload.DefaultTF())}
		if res := lra.NewTagPopularity().Place(c, apps, nil, lra.Options{}); res.PlacedApps() != 1 {
			b.Fatal("unplaced")
		}
	}
}

func BenchmarkClusterAllocate(b *testing.B) {
	c := cluster.Grid(100, 10, experiments.SimNodeCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cluster.MakeContainerID("bench", i)
		node := cluster.NodeID(i % 100)
		if err := c.Allocate(node, id, resource.New(1, 0), []constraint.Tag{"t"}); err != nil {
			b.Fatal(err)
		}
		if err := c.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}
