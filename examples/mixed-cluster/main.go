// mixed-cluster: the two-scheduler design end to end. LRAs and task-based
// jobs share a cluster; the discrete-event simulator drives arrivals, node
// heartbeats and completions, and the program reports both LRA placement
// quality and task scheduling latency — showing the LRA scheduler does not
// slow the task path (§3, §7.5).
package main

import (
	"fmt"
	"time"

	"medea"
	"medea/internal/cluster"
	"medea/internal/metrics"
	"medea/internal/sim"
	"medea/internal/workload"
)

func main() {
	c := medea.NewCluster(120, 12, medea.Resource(16384, 8))
	m := medea.New(c, medea.ILP(), medea.Config{Interval: 5 * time.Second},
		medea.QueueConfig{Name: "prod", Capacity: 0.5},
		medea.QueueConfig{Name: "batch", Capacity: 0.5},
	)
	eng := sim.NewEngine(time.Time{})

	// Node heartbeats every 500 ms; completed tasks release.
	eng.Every(sim.Epoch, 500*time.Millisecond, func(now time.Time) bool {
		for n := 0; n < c.NumNodes(); n++ {
			for _, a := range m.Tasks.NodeHeartbeat(cluster.NodeID(n), now) {
				alloc := a
				eng.After(alloc.Duration, func(time.Time) {
					_ = m.Tasks.ReleaseTask(alloc.Container, alloc.Queue, alloc.Demand)
				})
			}
		}
		return eng.Pending() > 0
	})
	// LRA scheduling cycles.
	eng.Every(sim.Epoch, 5*time.Second, func(now time.Time) bool {
		m.Tick(now)
		return eng.Pending() > 0
	})

	// Ten LRAs arrive over the first two minutes.
	for i := 0; i < 10; i++ {
		app := workload.TensorFlow(fmt.Sprintf("tf-%02d", i), workload.DefaultTF())
		at := sim.Epoch.Add(time.Duration(i) * 12 * time.Second)
		eng.At(at, func(now time.Time) {
			if err := m.SubmitLRA(app, now); err != nil {
				panic(err)
			}
		})
	}
	// Batch jobs arrive throughout.
	jobs := workload.GridMix(sim.RNG(3, "mixed"), 60, workload.DefaultGridMix())
	for i, job := range jobs {
		job := job
		at := sim.Epoch.Add(time.Duration(i) * 3 * time.Second)
		eng.At(at, func(now time.Time) {
			_ = m.SubmitTasks(job.ID, "batch", now, job.Req)
		})
	}

	eng.RunUntil(sim.Epoch.Add(10 * time.Minute))

	placed := 0
	for i := 0; i < 10; i++ {
		if _, ok := m.Deployed(fmt.Sprintf("tf-%02d", i)); ok {
			placed++
		}
	}
	rep := medea.Evaluate(c, m)
	lat := metrics.Durations(m.Tasks.Latencies)
	for i := range lat {
		lat[i] *= 1000
	}
	fmt.Printf("simulated %d events over %s virtual time\n", eng.Processed, "10m")
	fmt.Printf("LRAs placed: %d/10, constraint violations: %d/%d containers\n",
		placed, rep.ViolatedContainers, rep.SubjectContainers)
	fmt.Printf("task containers allocated: %d\n", len(lat))
	fmt.Printf("task scheduling latency: p50=%.0fms p99=%.0fms\n",
		metrics.Percentile(lat, 50), metrics.Percentile(lat, 99))
	fmt.Printf("cluster memory utilization: %.0f%%\n", 100*c.MemoryUtilization())
}
