// hbase-placement: the paper's §2.2 motivation, as a runnable program.
// Deploys several HBase instances twice — once with YARN-style
// constraint-unaware placement and once with Medea's anti-affinity — and
// compares the modeled YCSB throughput of the two placements.
package main

import (
	"fmt"
	"time"

	"medea"
	"medea/internal/perfmodel"
	"medea/internal/sim"
	"medea/internal/workload"
)

func deploy(alg medea.Algorithm, antiAffinity bool) (*medea.Cluster, *medea.Medea, []*medea.Application) {
	c := medea.NewCluster(80, 20, medea.Resource(16384, 8))
	m := medea.New(c, alg, medea.Config{})
	now := time.Now()
	var apps []*medea.Application
	for i := 0; i < 8; i++ {
		cfg := workload.HBaseConfig{Workers: 10}
		if antiAffinity {
			cfg.MaxWorkersPerNode = 1 // region servers never share a node
		}
		app := workload.HBase(fmt.Sprintf("hbase-%02d", i), cfg)
		apps = append(apps, app)
		if err := m.SubmitLRA(app, now); err != nil {
			panic(err)
		}
		if i%2 == 1 {
			m.RunCycle(now)
			now = now.Add(10 * time.Second)
		}
	}
	m.RunCycle(now)
	return c, m, apps
}

func avgCollocation(c *medea.Cluster, m *medea.Medea, apps []*medea.Application) float64 {
	others, rs := 0, 0
	for _, app := range apps {
		ids, ok := m.Deployed(app.ID)
		if !ok {
			continue
		}
		for _, id := range ids {
			tags, _ := c.ContainerTags(id)
			if !medea.E(workload.TagHBaseWorker).Matches(tags) {
				continue
			}
			node, _ := c.ContainerNode(id)
			others += c.GammaNode(node, medea.E(workload.TagHBaseWorker)) - 1
			rs++
		}
	}
	if rs == 0 {
		return 0
	}
	return float64(others) / float64(rs)
}

func main() {
	rng := sim.RNG(7, "example")

	cY, mY, appsY := deploy(medea.YARN(), false)
	collY := avgCollocation(cY, mY, appsY)

	cM, mM, appsM := deploy(medea.ILP(), true)
	collM := avgCollocation(cM, mM, appsM)

	fmt.Printf("avg collocated region servers: YARN=%.2f MEDEA=%.2f\n\n", collY, collM)
	fmt.Printf("%-8s  %-14s  %-14s\n", "workload", "YARN (Kops/s)", "MEDEA (Kops/s)")
	for _, w := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		ty := perfmodel.YCSBThroughput(w, collY, false, rng)
		tm := perfmodel.YCSBThroughput(w, collM, false, rng)
		fmt.Printf("%-8s  %-14.1f  %-14.1f\n", string(w), ty, tm)
	}

	repM := medea.Evaluate(cM, mM)
	fmt.Printf("\nMedea placement: %d containers, %d violations\n",
		cM.NumContainers(), repM.ViolatedContainers)
}
