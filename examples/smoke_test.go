// Package examples holds runnable demos; this smoke test keeps them
// compiling and running in CI. Each example is executed via `go run`
// exactly as the README instructs, and must exit zero and print the
// landmark line that proves it got past its real work — examples are
// documentation, and documentation that silently rots is worse than
// none.
package examples

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesSmoke(t *testing.T) {
	cases := []struct {
		dir  string
		want string // landmark output proving the example did its job
	}{
		{"quickstart", "cycle: batch=1 placed=1"},
		{"hbase-placement", "avg collocated region servers"},
		{"mixed-cluster", "LRAs placed: 10/10"},
		{"resilience", "repair MTTR"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			cmd := exec.Command("go", "run", "./"+tc.dir)
			cmd.Dir = "." // the examples/ directory; go run resolves inside the module
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s failed after %v: %v\n%s", tc.dir, time.Since(start), err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("go run ./%s output lacks %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
