// Quickstart: stand up a simulated cluster, submit a long-running
// application with placement constraints, run one Medea scheduling cycle
// and inspect where the containers landed.
package main

import (
	"fmt"
	"time"

	"medea"
)

func main() {
	// A 40-node cluster (16 GB / 8 cores each) in racks of 10.
	c := medea.NewCluster(40, 10, medea.Resource(16384, 8))

	// Medea with the ILP-based LRA scheduler and the default task queue.
	m := medea.New(c, medea.ILP(), medea.Config{Interval: 10 * time.Second})

	// An HBase-like LRA: one master, ten region servers. Constraints:
	//   - at most 2 region servers per node (cardinality: each sees ≤1 other),
	//   - master on a different node from every region server (anti-affinity),
	//   - all region servers on one rack (affinity).
	app := &medea.Application{
		ID: "hbase-demo",
		Groups: []medea.ContainerGroup{
			{Name: "master", Count: 1, Demand: medea.Resource(1024, 1), Tags: []medea.Tag{"hb", "hb_m"}},
			{Name: "rs", Count: 10, Demand: medea.Resource(2048, 1), Tags: []medea.Tag{"hb", "hb_rs"}},
		},
		Constraints: []medea.Constraint{
			medea.MustParse("{hb_rs, {hb_rs, 0, 1}, node}"),
			medea.MustParse("{hb_m, {hb_rs, 0, 0}, node}"),
			medea.Affinity(medea.E("hb_rs"), medea.E("hb_rs"), medea.RackGroup),
		},
	}

	now := time.Now()
	if err := m.SubmitLRA(app, now); err != nil {
		panic(err)
	}
	stats := m.RunCycle(now)
	fmt.Printf("cycle: batch=%d placed=%d latency=%s\n",
		stats.Batch, stats.Placed, stats.AlgLatency.Round(time.Microsecond))

	ids, ok := m.Deployed("hbase-demo")
	if !ok {
		panic("application not placed")
	}
	perNode := map[medea.NodeID]int{}
	for _, id := range ids {
		node, _ := c.ContainerNode(id)
		perNode[node]++
		tags, _ := c.ContainerTags(id)
		fmt.Printf("  %-16s -> %s (tags %v)\n", id, c.Node(node).Name, tags)
	}

	rep := medea.Evaluate(c, m)
	fmt.Printf("constraint check: %d/%d containers violating (extent %.2f)\n",
		rep.ViolatedContainers, rep.SubjectContainers, rep.TotalExtent)
	for node, n := range perNode {
		if n > 2+1 { // ≤2 region servers + possibly the master
			fmt.Printf("unexpected pile-up on node %d: %d containers\n", node, n)
		}
	}
	fmt.Println("done.")
}
