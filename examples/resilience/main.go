// resilience: the paper's §2.3/§7.3 story. Places an LRA with and without
// a spread-across-service-units constraint, replays a correlated
// unavailability trace, and reports the worst-hour container loss of the
// two placements.
package main

import (
	"fmt"
	"time"

	"medea"
	"medea/internal/cluster"
	"medea/internal/failure"
	"medea/internal/metrics"
	"medea/internal/sim"
)

func main() {
	const (
		nodes      = 250
		sus        = 25
		containers = 100
		hours      = 240 // ten days
	)
	trace := failure.Generate(sim.RNG(11, "resilience"), failure.Config{
		ServiceUnits: sus, Hours: hours,
	})

	results := map[string][]float64{}
	for _, spread := range []bool{false, true} {
		c := medea.NewCluster(nodes, 10, medea.Resource(16384, 8))
		if err := failure.RegisterServiceUnits(c, sus); err != nil {
			panic(err)
		}
		m := medea.New(c, medea.ILP(), medea.Config{})
		app := &medea.Application{
			ID: "service",
			Groups: []medea.ContainerGroup{{
				Name: "worker", Count: containers,
				Demand: medea.Resource(1024, 1), Tags: []medea.Tag{"svc"},
			}},
		}
		if spread {
			// At most perfect-spread+1 per service unit: 100 containers
			// over 25 SUs means each sees at most 4 peers in its SU.
			app.Constraints = []medea.Constraint{
				medea.Cardinality(medea.E("svc"), medea.E("svc"), 0, containers/sus, medea.ServiceUnit),
			}
		}
		now := time.Now()
		if err := m.SubmitLRA(app, now); err != nil {
			panic(err)
		}
		m.RunCycle(now)
		ids, ok := m.Deployed("service")
		if !ok {
			panic("service not placed")
		}
		name := "no-constraint"
		if spread {
			name = "spread-across-SUs"
		}
		var worst []float64
		placed := map[string][]cluster.ContainerID{"service": ids}
		for h := 0; h < hours; h++ {
			per := trace.UnavailabilityPerLRA(c, h, placed)
			worst = append(worst, per["service"]*100)
		}
		results[name] = worst
	}

	fmt.Printf("%-20s  %-8s  %-8s  %-8s\n", "placement", "p50(%)", "p99(%)", "max(%)")
	for _, name := range []string{"no-constraint", "spread-across-SUs"} {
		w := results[name]
		fmt.Printf("%-20s  %-8.1f  %-8.1f  %-8.1f\n", name,
			metrics.Percentile(w, 50), metrics.Percentile(w, 99), metrics.Percentile(w, 100))
	}
	fmt.Println("\nspreading across service units caps the blast radius of a correlated outage.")
}
