// resilience: the paper's §2.3/§7.3 story, told twice.
//
// Section 1 (live): the same correlated unavailability trace is replayed
// through the chaos injector against a *running* Medea — nodes actually
// fail, containers are evicted, and the recovery loop re-places them.
// With the spread constraint the per-SU blast radius is capped, so each
// failure event costs fewer containers and less degraded time.
//
// Section 2 (offline): the original placement-scoring comparison — the
// worst-hour container loss of the two placements against the trace,
// without any recovery.
package main

import (
	"fmt"
	"time"

	"medea"
	"medea/internal/chaos"
	"medea/internal/cluster"
	"medea/internal/failure"
	"medea/internal/metrics"
	"medea/internal/sim"
)

const (
	nodes      = 250
	sus        = 25
	containers = 100
	hours      = 240              // ten trace days
	hourDur    = 30 * time.Second // virtual time per trace hour
	interval   = 10 * time.Second // LRA scheduling interval
)

// serviceApp builds the 100-container LRA, optionally spread across SUs.
func serviceApp(spread bool) *medea.Application {
	app := &medea.Application{
		ID: "service",
		Groups: []medea.ContainerGroup{{
			Name: "worker", Count: containers,
			Demand: medea.Resource(1024, 1), Tags: []medea.Tag{"svc"},
		}},
	}
	if spread {
		// At most perfect-spread+1 per service unit: 100 containers over
		// 25 SUs means each sees at most 4 peers in its SU.
		app.Constraints = []medea.Constraint{
			medea.Cardinality(medea.E("svc"), medea.E("svc"), 0, containers/sus, medea.ServiceUnit),
		}
	}
	return app
}

func name(spread bool) string {
	if spread {
		return "spread-across-SUs"
	}
	return "no-constraint"
}

func main() {
	trace := failure.Generate(sim.RNG(11, "resilience"), failure.Config{
		ServiceUnits: sus, Hours: hours,
	})

	fmt.Println("== live: fail the nodes, let the recovery loop repair ==")
	fmt.Printf("%-20s  %-8s  %-9s  %-11s  %-13s  %-11s\n",
		"placement", "evicted", "repaired", "repair MTTR", "degraded time", "max down(%)")
	for _, spread := range []bool{false, true} {
		c := medea.NewCluster(nodes, 10, medea.Resource(16384, 8))
		if err := failure.RegisterServiceUnits(c, sus); err != nil {
			panic(err)
		}
		// The hardened pipeline config: every ILP solve is bounded
		// end-to-end by SolverBudget, and the post-cycle auditor verifies
		// the cluster invariants — fail-fast, so a corrupted commit would
		// crash this example rather than skew its numbers.
		m := medea.New(c, medea.ILP(), medea.Config{
			Interval:     interval,
			SolverBudget: 250 * time.Millisecond,
			Audit:        medea.AuditFailFast,
		})
		eng := sim.NewEngine(time.Time{})
		start := eng.Now()
		if err := m.SubmitLRA(serviceApp(spread), start); err != nil {
			panic(err)
		}
		m.RunCycle(start)
		if _, ok := m.Deployed("service"); !ok {
			panic("service not placed")
		}

		span := hours * hourDur
		end := start.Add(span).Add(5 * time.Minute) // drain window for last repairs
		// worstDip is the deepest instantaneous degradation — the live
		// counterpart of the offline section's "max(%)" column — sampled
		// each tick before repairs run.
		worstDip := 0.0
		eng.Every(start, interval, func(now time.Time) bool {
			ids, _ := m.Deployed("service")
			if dip := 100 * float64(containers-len(ids)) / containers; dip > worstDip {
				worstDip = dip
			}
			m.Tick(now)
			return now.Before(end)
		})
		// Churn starts 3s off the tick grid, as real failures do.
		eng.At(start.Add(3*time.Second), func(time.Time) {
			if _, err := chaos.ReplayTrace(eng, m, c, trace, hourDur); err != nil {
				panic(err)
			}
		})
		eng.Run(0)

		r := &m.Recovery
		fmt.Printf("%-20s  %-8d  %-9d  %-11s  %-13s  %-11.1f\n",
			name(spread), r.Evictions, r.RepairsPlaced,
			r.MTTR().Round(time.Millisecond), r.TotalDegraded().Round(time.Second), worstDip)
		if spread {
			// The hardening counters for the constrained run: recovered
			// panics and validation rejects should read zero with an honest
			// solver; deadline hits show the budget doing its job.
			fmt.Println()
			fmt.Println(m.Pipeline.Table("pipeline hardening (spread-across-SUs run)"))
		}
	}

	fmt.Println("\n== offline: score static placements against the trace ==")
	results := map[string][]float64{}
	for _, spread := range []bool{false, true} {
		c := medea.NewCluster(nodes, 10, medea.Resource(16384, 8))
		if err := failure.RegisterServiceUnits(c, sus); err != nil {
			panic(err)
		}
		m := medea.New(c, medea.ILP(), medea.Config{})
		now := time.Now()
		if err := m.SubmitLRA(serviceApp(spread), now); err != nil {
			panic(err)
		}
		m.RunCycle(now)
		ids, ok := m.Deployed("service")
		if !ok {
			panic("service not placed")
		}
		var worst []float64
		placed := map[string][]cluster.ContainerID{"service": ids}
		for h := 0; h < hours; h++ {
			per := trace.UnavailabilityPerLRA(c, h, placed)
			worst = append(worst, per["service"]*100)
		}
		results[name(spread)] = worst
	}
	fmt.Printf("%-20s  %-8s  %-8s  %-8s\n", "placement", "p50(%)", "p99(%)", "max(%)")
	for _, spread := range []bool{false, true} {
		w := results[name(spread)]
		fmt.Printf("%-20s  %-8.1f  %-8.1f  %-8.1f\n", name(spread),
			metrics.Percentile(w, 50), metrics.Percentile(w, 99), metrics.Percentile(w, 100))
	}
	fmt.Println("\nspreading across service units caps the blast radius of a correlated")
	fmt.Println("outage: the service is touched by more events (it has containers in")
	fmt.Println("every SU) but never loses more than a sliver at once, so the recovery")
	fmt.Println("loop keeps the worst instantaneous dip shallow.")
}
