// Package medea is a from-scratch reproduction of "Medea: Scheduling of
// Long Running Applications in Shared Production Clusters" (EuroSys 2018).
//
// Medea is a cluster scheduler for long-running applications (LRAs) with
// expressive placement constraints. This package is the public facade: it
// re-exports the pieces a downstream user composes — the cluster model,
// the constraint language, the LRA scheduling algorithms, the task-based
// (capacity) scheduler and the two-scheduler coordinator — so typical
// programs only import "medea".
//
// Quick start:
//
//	c := medea.NewCluster(100, 10, medea.Resource(16384, 8))
//	m := medea.New(c, medea.ILP(), medea.Config{})
//	app := &medea.Application{
//	    ID: "hbase-1",
//	    Groups: []medea.ContainerGroup{{
//	        Name: "rs", Count: 10, Demand: medea.Resource(2048, 1),
//	        Tags: []medea.Tag{"hb", "hb_rs"},
//	    }},
//	    Constraints: []medea.Constraint{
//	        medea.MustParse("{hb_rs, {hb_rs, 0, 1}, node}"),
//	    },
//	}
//	_ = m.SubmitLRA(app, time.Now())
//	stats := m.RunCycle(time.Now())
//
// See the examples/ directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the paper reproduction.
package medea

import (
	"time"

	"medea/internal/audit"
	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/core"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/metrics"
	"medea/internal/resource"
	"medea/internal/taskched"
)

// Re-exported core types.
type (
	// Cluster is the shared cluster state both schedulers operate on.
	Cluster = cluster.Cluster
	// NodeID identifies a cluster node.
	NodeID = cluster.NodeID
	// ContainerID identifies an allocated container.
	ContainerID = cluster.ContainerID
	// Vector is a multi-dimensional resource amount.
	Vector = resource.Vector
	// Tag is a container tag (§4.1 of the paper).
	Tag = constraint.Tag
	// Expr is a conjunction of tags.
	Expr = constraint.Expr
	// Constraint is a (possibly compound) placement constraint.
	Constraint = constraint.Constraint
	// Atom is the generic constraint form {subject, {target, min, max}, group}.
	Atom = constraint.Atom
	// GroupName names a node group (node, rack, upgrade_domain, ...).
	GroupName = constraint.GroupName
	// Application is an LRA submission.
	Application = lra.Application
	// ContainerGroup is a homogeneous container group within an LRA.
	ContainerGroup = lra.ContainerGroup
	// Algorithm is an LRA placement algorithm.
	Algorithm = lra.Algorithm
	// Options tunes an LRA scheduling invocation.
	Options = lra.Options
	// Medea is the two-scheduler coordinator.
	Medea = core.Medea
	// Config parameterises a Medea instance.
	Config = core.Config
	// Eviction records one container displaced by a node failure or drain.
	Eviction = cluster.Eviction
	// NodeState is a node's availability state (up, draining, down).
	NodeState = cluster.NodeState
	// RecoveryStats aggregates failure-recovery counters (Medea.Recovery).
	RecoveryStats = metrics.RecoveryStats
	// PipelineStats aggregates the hardening counters (Medea.Pipeline):
	// recovered panics, validation rejects, solver deadline hits and
	// circuit-breaker transitions.
	PipelineStats = metrics.PipelineStats
	// BreakerEvent is one circuit-breaker state transition.
	BreakerEvent = metrics.BreakerEvent
	// ServerStats aggregates the serving layer's overload counters
	// (admitted, throttled, shed, expired, drain-flushed); see
	// internal/server and cmd/medea-server.
	ServerStats = metrics.ServerStats
	// AuditMode selects the post-commit cluster-invariant checker mode
	// (Config.Audit).
	AuditMode = audit.Mode
	// TaskRequest asks for short-running task containers.
	TaskRequest = taskched.TaskRequest
	// QueueConfig declares a capacity-scheduler queue.
	QueueConfig = taskched.QueueConfig
	// Journal is the write-ahead log + checkpoint store that makes a
	// Medea instance's state durable (Medea.AttachJournal, Recover).
	Journal = journal.Journal
	// JournalRecord is one write-ahead log entry.
	JournalRecord = journal.Record
	// JournalCheckpoint is a full durable-state snapshot.
	JournalCheckpoint = journal.Checkpoint
	// ClusterSnapshot is a serialisable image of cluster state (nodes,
	// groups, allocations, static tags), rebuildable via FromSnapshot.
	ClusterSnapshot = cluster.Snapshot
)

// Predefined node groups.
const (
	NodeGroup     = constraint.Node
	RackGroup     = constraint.Rack
	UpgradeDomain = constraint.UpgradeDomain
	FaultDomain   = constraint.FaultDomain
	ServiceUnit   = constraint.ServiceUnit
)

// Node availability states.
const (
	NodeUp       = cluster.NodeUp
	NodeDraining = cluster.NodeDraining
	NodeDown     = cluster.NodeDown
)

// Cluster-invariant auditor modes (Config.Audit). Commit-time validation
// of individual placements is always on; these govern the whole-cluster
// invariant sweep after each cycle.
const (
	// AuditOff skips the post-cycle sweep.
	AuditOff = audit.Off
	// AuditMetrics records invariant violations in Medea.Pipeline.
	AuditMetrics = audit.Metrics
	// AuditFailFast panics on the first invariant violation.
	AuditFailFast = audit.FailFast
)

// ParseAuditMode parses "off", "metrics" or "fail-fast".
func ParseAuditMode(s string) (AuditMode, error) { return audit.ParseMode(s) }

// Resource builds a resource vector of memory (MB) and virtual cores.
func Resource(memoryMB, vcores int64) Vector { return resource.New(memoryMB, vcores) }

// NewCluster builds a cluster of numNodes uniform machines in racks of
// rackSize, registering the node and rack groups.
func NewCluster(numNodes, rackSize int, capacity Vector) *Cluster {
	return cluster.Grid(numNodes, rackSize, capacity)
}

// New creates a Medea instance over a cluster with the given LRA
// algorithm and task queues.
func New(c *Cluster, alg Algorithm, cfg Config, queues ...QueueConfig) *Medea {
	return core.New(c, alg, cfg, queues...)
}

// NewMemoryJournal returns an in-memory journal backend (tests, sims).
func NewMemoryJournal() *journal.Memory { return journal.NewMemory() }

// OpenJournalDir opens (or creates) a file-backed journal directory
// holding a line-JSON write-ahead log and the latest checkpoint.
func OpenJournalDir(dir string) (*journal.File, error) { return journal.OpenDir(dir) }

// Recover rebuilds a scheduler from its journal and the live cluster
// after a crash: latest checkpoint, write-ahead replay, then a
// reconciliation sweep against cluster truth (adopt committed in-flight
// placements, re-queue lost containers, release orphans). The journal is
// re-attached to the returned instance.
func Recover(j Journal, c *Cluster, alg Algorithm, cfg Config, now time.Time, queues ...QueueConfig) (*Medea, error) {
	return core.Recover(j, c, alg, cfg, now, queues...)
}

// FromSnapshot rebuilds a cluster from a snapshot taken with
// Cluster.TakeSnapshot (e.g. the one embedded in a checkpoint).
func FromSnapshot(s *ClusterSnapshot) (*Cluster, error) { return cluster.FromSnapshot(s) }

// ILP returns the Medea-ILP scheduling algorithm (§5.2).
func ILP() Algorithm { return lra.NewILP() }

// NodeCandidates returns the Medea-NC heuristic (§5.3).
func NodeCandidates() Algorithm { return lra.NewNodeCandidates() }

// TagPopularity returns the Medea-TP heuristic (§5.3).
func TagPopularity() Algorithm { return lra.NewTagPopularity() }

// Serial returns the unordered greedy baseline (§7.1).
func Serial() Algorithm { return lra.NewSerial() }

// JKube returns the Kubernetes-algorithm baseline (§7.1).
func JKube() Algorithm { return lra.NewJKube() }

// JKubePlusPlus returns J-Kube extended with cardinality support (§7.1).
func JKubePlusPlus() Algorithm { return lra.NewJKubePlusPlus() }

// YARN returns the constraint-unaware YARN baseline (§7.1).
func YARN() Algorithm { return lra.NewYARN() }

// Constraint constructors (§4.2).

// Affinity places each subject container with at least one target in the
// same node set of group.
func Affinity(subject, target Expr, group GroupName) Constraint {
	return constraint.New(constraint.Affinity(subject, target, group))
}

// AntiAffinity keeps subject containers away from all targets within group.
func AntiAffinity(subject, target Expr, group GroupName) Constraint {
	return constraint.New(constraint.AntiAffinity(subject, target, group))
}

// Cardinality bounds collocated targets per node set between min and max.
func Cardinality(subject, target Expr, min, max int, group GroupName) Constraint {
	return constraint.New(constraint.CardinalityRange(subject, target, min, max, group))
}

// E builds a tag conjunction.
func E(tags ...Tag) Expr { return constraint.E(tags...) }

// Parse parses the textual constraint syntax, e.g.
// "{storm, {hb & mem, 1, inf}, node}".
func Parse(s string) (Constraint, error) { return constraint.Parse(s) }

// MustParse is Parse that panics on malformed input.
func MustParse(s string) Constraint { return constraint.MustParse(s) }

// Unbounded is the cmax value meaning "no upper bound".
const Unbounded = constraint.Unbounded

// Evaluate reports constraint violations on the current cluster state.
func Evaluate(c *Cluster, m *Medea) lra.Report {
	return lra.Evaluate(c, m.ActiveEntries())
}

// MigrationOptions bounds a Rebalance run (§5.4 container migration).
type MigrationOptions = lra.MigrationOptions

// MigrationPlan reports the moves a Rebalance applied.
type MigrationPlan = lra.MigrationPlan
