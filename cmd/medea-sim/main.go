// Command medea-sim regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	medea-sim [-seed N] [-scale F] [-budget D] [-audit MODE] <experiment>...
//	medea-sim all
//
// Experiments: fig1 fig2a fig2b fig2c fig2d fig3 table1 fig7 fig8
// fig8live fig9a fig9b fig9c fig9d fig10 fig11a fig11b fig11c hardening
// crashrestart
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"medea/internal/audit"
	"medea/internal/experiments"
	"medea/internal/metrics"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Float64("scale", 0.25, "scale factor (1.0 = paper dimensions)")
	budget := flag.Duration("budget", 500*time.Millisecond, "ILP solver budget per cycle")
	auditMode := flag.String("audit", "off", "cluster-invariant auditor: off, metrics or fail-fast")
	journalDir := flag.String("journal", "", "directory for file-backed scheduler journals (crashrestart; default in-memory)")
	crashAt := flag.Int("crash-at", 0, "durability op to crash the scheduler before (crashrestart; 0 = mid-run default)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	mode, err := audit.ParseMode(*auditMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medea-sim: %v\n", err)
		os.Exit(2)
	}
	o := experiments.Options{
		Seed: *seed, Scale: *scale, SolverBudget: *budget, Audit: mode,
		JournalDir: *journalDir, CrashAt: *crashAt,
	}

	runners := map[string]func(experiments.Options) []*metrics.Table{
		"fig1":         single(experiments.RunFig1),
		"fig2a":        single(experiments.RunFig2a),
		"fig2b":        single(experiments.RunFig2b),
		"fig2c":        single(experiments.RunFig2c),
		"fig2d":        single(experiments.RunFig2d),
		"fig3":         single(experiments.RunFig3),
		"table1":       single(experiments.RunTable1),
		"fig7":         func(o experiments.Options) []*metrics.Table { return experiments.RunFig7(o).Tables() },
		"fig8":         single(experiments.RunFig8),
		"fig8live":     single(experiments.RunFig8Live),
		"fig9a":        single(experiments.RunFig9a),
		"fig9b":        single(experiments.RunFig9b),
		"fig9c":        single(experiments.RunFig9c),
		"fig9d":        single(experiments.RunFig9d),
		"fig10":        func(o experiments.Options) []*metrics.Table { return experiments.RunFig10(o).Tables() },
		"fig11a":       single(experiments.RunFig11a),
		"fig11b":       single(experiments.RunFig11b),
		"fig11c":       single(experiments.RunFig11c),
		"hardening":    single(experiments.RunHardening),
		"crashrestart": single(experiments.RunCrashRestart),
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = names[:0]
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "medea-sim: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		for _, tab := range run(o) {
			fmt.Println(tab)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func single(f func(experiments.Options) *metrics.Table) func(experiments.Options) []*metrics.Table {
	return func(o experiments.Options) []*metrics.Table { return []*metrics.Table{f(o)} }
}

func usage() {
	fmt.Fprintf(os.Stderr, `medea-sim regenerates the Medea paper's tables and figures.

usage: medea-sim [-seed N] [-scale F] [-budget D] [-audit MODE] <experiment>...

experiments:
  fig1    machines used for LRAs across clusters
  fig2a   Memcached latency under affinity constraints
  fig2b   HBase YCSB throughput under anti-affinity (± cgroups)
  fig2c   HBase runtime vs cardinality cap
  fig2d   TensorFlow runtime vs cardinality cap
  fig3    service-unit unavailability trace
  table1  scheduler feature matrix
  fig7    application performance box plots (4 tables)
  fig8    resilience: max container unavailability CDF
  fig8live live recovery under replayed SU churn (MTTR, degraded time)
  fig9a   violations vs LRA utilization
  fig9b   violations vs task-based utilization
  fig9c   violations vs periodicity
  fig9d   violations vs constraint complexity
  fig10   fragmentation and load balance (2 tables)
  fig11a  LRA scheduling latency vs cluster size
  fig11b  two-scheduler benefit (MEDEA vs ILP-ALL)
  fig11c  task scheduling latency under Google-trace replay
  hardening pipeline defenses under a byzantine algorithm (breaker on/off)
  crashrestart journaled scheduler killed mid-run, recovered, resumed
  all     everything above

flags:
`)
	flag.PrintDefaults()
}
