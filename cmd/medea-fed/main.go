// Command medea-fed drives a simulated federation — N member clusters,
// each a full journaled scheduler behind its serving API, fronted by the
// scout/balancer layer — through an overload run with scripted
// cluster-level chaos: one member is killed mid-load and another answers
// every second request too slowly (Byzantine slow-but-alive). It records
// routing latency percentiles, the spillover rate, and the failover MTTR
// (kill to clean fleet-wide audit), and with -gate enforces the
// robustness contract: zero acknowledged submissions lost, failover
// within -max-mttr, and the slow member never confirmed dead.
//
// A second phase then exercises the planned-operations path while fresh
// submissions keep arriving: the killed member is restarted, one member
// is drained (cordon plus two-phase evacuation of everything it holds),
// and finally the whole fleet is rolled one member at a time. The gate
// extends to: the drain and the rolling restart complete, every member
// is alive afterwards, and the two-phase migration p99 stays under
// -max-mig-p99.
//
// Usage:
//
//	medea-fed [-members N] [-jobs N] [-overload F] [-out BENCH_fed.json] [-gate]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"medea/internal/chaos"
	"medea/internal/core"
	"medea/internal/federation"
	"medea/internal/metrics"
	"medea/internal/resource"
	"medea/internal/server"
	"medea/internal/workload"
)

type fedReport struct {
	Benchmark string  `json:"benchmark"`
	Members   int     `json:"members"`
	Jobs      int     `json:"jobs"`
	Overload  float64 `json:"overload"`
	Seed      int64   `json:"seed"`

	Routed        int     `json:"routed"`
	RouteFailures int     `json:"route_failures"`
	Spillovers    int     `json:"spillovers"`
	SpilloverRate float64 `json:"spillover_rate"`

	P50RouteMs float64 `json:"p50_route_ms"`
	P99RouteMs float64 `json:"p99_route_ms"`

	KilledMember     string  `json:"killed_member"`
	SlowMember       string  `json:"slow_member"`
	DetectionSeconds float64 `json:"detection_seconds"`
	MTTRSeconds      float64 `json:"mttr_seconds"`
	DeadConfirms     int     `json:"dead_confirms"`

	FailoverReplaced  int `json:"failover_replaced"`
	DegradedQueued    int `json:"degraded_queued"`
	DegradedRecovered int `json:"degraded_recovered"`

	DrainedMember       string  `json:"drained_member"`
	DrainSeconds        float64 `json:"drain_seconds"`
	RollingSeconds      float64 `json:"rolling_seconds"`
	MembersAliveAfter   int     `json:"members_alive_after"`
	MigrationsCompleted int     `json:"migrations_completed"`
	MigrationsAborted   int     `json:"migrations_aborted"`
	MigrationP99Ms      float64 `json:"migration_p99_ms"`

	AuditPlaced   int      `json:"audit_placed"`
	AuditDegraded int      `json:"audit_degraded"`
	AuditRejected int      `json:"audit_rejected"`
	AuditLost     []string `json:"audit_lost"`

	WallSeconds float64 `json:"wall_seconds"`
}

func main() {
	members := flag.Int("members", 3, "member clusters in the federation")
	nodes := flag.Int("nodes", 16, "nodes per member cluster")
	jobs := flag.Int("jobs", 120, "trace jobs to route")
	overload := flag.Float64("overload", 4, "overload factor: divide trace inter-arrival time by this")
	seed := flag.Int64("seed", 42, "random seed for the arrival process")
	rate := flag.Float64("rate", 60, "per-member global submit budget (req/s); drives spillover")
	out := flag.String("out", "", "write the JSON report to this file")
	gate := flag.Bool("gate", false, "fail unless zero loss, MTTR and detector guarantees held")
	maxP99 := flag.Duration("maxp99", 250*time.Millisecond, "gate: max p99 routing latency")
	maxMTTR := flag.Duration("max-mttr", 5*time.Second, "gate: max kill-to-clean-audit time")
	maxMigP99 := flag.Duration("max-mig-p99", 2*time.Second, "gate: max p99 two-phase migration duration")
	syncEvery := flag.Int("sync-every", 0, "journal fsync policy for -journal-root members")
	journalRoot := flag.String("journal-root", "", "file-backed member journals under this dir (default in-memory)")
	flag.Parse()
	log.SetPrefix("medea-fed: ")
	log.SetFlags(0)

	const probeEvery = 25 * time.Millisecond
	fleet, err := federation.NewFleet(federation.FleetConfig{
		Members:        *members,
		NodesPerMember: *nodes,
		NodeCapacity:   resource.New(16384, 16),
		Core:           core.Config{Interval: 25 * time.Millisecond, CheckpointEvery: 64},
		Server: server.Config{
			PollEvery: 10 * time.Millisecond,
			QueueCap:  512,
			RateLimit: server.RateLimitConfig{GlobalRate: *rate, Burst: 16},
		},
		JournalRoot: *journalRoot,
		SyncEvery:   *syncEvery,
		Scout: federation.ScoutConfig{
			ProbeInterval: probeEvery,
			ProbeTimeout:  15 * time.Millisecond,
		},
		Route: federation.RouteConfig{
			AttemptTimeout: 100 * time.Millisecond,
			MaxRounds:      3,
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fleet.Start(ctx)
	defer fleet.Close()

	// Scripted chaos, driven by wall time relative to the load start:
	// the last member turns Byzantine-slow immediately (every 2nd request
	// stalls past the probe timeout — the detector must only ever suspect
	// it), and the first member is crashed halfway through the run.
	killed := "cluster-0"
	slow := fmt.Sprintf("cluster-%d", *members-1)
	halfway := time.Duration(float64(*jobs) / 2 * 50 / *overload * float64(time.Millisecond))
	script := chaos.NewFleetScript(
		chaos.FleetEvent{After: 0, Kind: chaos.FleetSlow, Member: slow, Delay: 45 * time.Millisecond, Every: 2},
		chaos.FleetEvent{After: halfway, Kind: chaos.FleetCrash, Member: killed},
	)

	trace := workload.GoogleTrace(rand.New(rand.NewSource(*seed)), workload.GoogleTraceConfig{
		Jobs:             *jobs,
		MeanInterarrival: 50 * time.Millisecond,
		MeanTasksPerJob:  8,
		MeanDuration:     3 * time.Second,
	})

	var (
		mu       sync.Mutex
		routeMs  []float64
		killTime time.Time
		wg       sync.WaitGroup
	)
	wallStart := time.Now()
	prev := time.Duration(0)
	for _, tt := range trace {
		gap := time.Duration(float64(tt.Arrival-prev) / *overload)
		prev = tt.Arrival
		if gap > 0 {
			time.Sleep(gap)
		}
		elapsed := time.Since(wallStart)
		if n, err := script.ApplyDue(fleet, elapsed); err != nil {
			log.Fatalf("chaos script: %v", err)
		} else if n > 0 && killTime.IsZero() && elapsed >= halfway {
			killTime = time.Now()
			log.Printf("killed %s at %v into the run", killed, elapsed.Round(time.Millisecond))
		}
		count := tt.Req.Count
		if count > 4 {
			count = 4
		}
		req := &server.SubmitRequest{
			ID:     tt.Job,
			Groups: []server.GroupSpec{{Name: "w", Count: count, MemoryMB: 512, VCores: 1}},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := fleet.Balancer.Submit(req)
			lat := time.Since(start)
			mu.Lock()
			if err == nil {
				routeMs = append(routeMs, float64(lat)/float64(time.Millisecond))
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if _, err := script.ApplyDue(fleet, time.Since(wallStart)); err != nil {
		log.Fatalf("chaos script: %v", err)
	}
	if killTime.IsZero() {
		killTime = time.Now() // crash fired on the post-loop ApplyDue
		log.Printf("killed %s after the arrival loop", killed)
	}

	// MTTR: poll the fleet-wide audit until no app is lost or still homed
	// on the corpse (degraded is an honest terminal state, counted but
	// not waited for). Detection alone is the scout confirming death.
	var detection, mttr time.Duration
	deadline := killTime.Add(*maxMTTR + 5*time.Second)
	for time.Now().Before(deadline) {
		now := time.Now()
		if detection == 0 && fleet.Scout.State(killed, now) == federation.Dead {
			detection = now.Sub(killTime)
		}
		a := fleet.Balancer.Audit(now)
		if detection > 0 && a.OnDead == 0 && len(a.Lost) == 0 {
			mttr = time.Since(killTime)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Let in-flight placements settle before the planned-operations phase.
	time.Sleep(10 * probeEvery)

	// Phase 2: planned operations under load. Revive the corpse so the
	// fleet is whole, keep a trickle of fresh submissions arriving, then
	// drain one member (cordon + evacuate) and roll the entire fleet.
	if !fleet.RestartMember(killed) {
		log.Fatalf("could not restart %s from its journal", killed)
	}
	time.Sleep(20 * probeEvery) // scout re-confirms it alive
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			case <-time.After(250 * time.Millisecond):
			}
			req := &server.SubmitRequest{
				ID:     fmt.Sprintf("phase2-%03d", i),
				Groups: []server.GroupSpec{{Name: "w", Count: 2, MemoryMB: 512, VCores: 1}},
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				_, err := fleet.Balancer.Submit(req)
				lat := time.Since(start)
				mu.Lock()
				if err == nil {
					routeMs = append(routeMs, float64(lat)/float64(time.Millisecond))
				}
				mu.Unlock()
			}()
		}
	}()

	drained := fmt.Sprintf("cluster-%d", 1%*members)
	var drainSecs float64
	drainStart := time.Now()
	if err := fleet.Balancer.DrainMember(drained); err != nil {
		log.Printf("drain %s: %v", drained, err)
	} else {
		for fleet.Balancer.DrainActive(drained) && time.Since(drainStart) < 30*time.Second {
			time.Sleep(20 * time.Millisecond)
		}
		if !fleet.Balancer.DrainActive(drained) {
			drainSecs = time.Since(drainStart).Seconds()
			log.Printf("drained %s in %.2fs", drained, drainSecs)
		} else {
			log.Printf("drain of %s did not finish in 30s", drained)
		}
		fleet.Balancer.CancelDrain(drained) // lift the cordon for the roll
	}

	// Rolling restart duration scales with the deployed population (every
	// member is evacuated in turn), so its budget is generous.
	var rollSecs float64
	rollStart := time.Now()
	if fleet.StartRollingRestart() {
		for fleet.RollingActive() && time.Since(rollStart) < 150*time.Second {
			time.Sleep(20 * time.Millisecond)
		}
		if !fleet.RollingActive() {
			rollSecs = time.Since(rollStart).Seconds()
			log.Printf("rolling restart of %d members in %.2fs", *members, rollSecs)
		} else {
			log.Printf("rolling restart did not finish in 150s")
		}
	}
	close(stopLoad)
	loadWG.Wait()
	wg.Wait()

	alive := 0
	for _, m := range fleet.Members {
		if !m.Gate.Crashed() && fleet.Scout.State(m.ID, time.Now()) != federation.Dead {
			alive++
		}
	}
	var migMs []float64
	for _, d := range fleet.Balancer.MigrationDurations() {
		migMs = append(migMs, float64(d)/float64(time.Millisecond))
	}

	// Settle: poll until the audit accounts for every routed app (no one
	// still reconciling or mid-migration), so the accounting gate judges
	// a quiesced fleet rather than a snapshot of work in flight.
	finalAudit := fleet.Balancer.Audit(time.Now())
	settleDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(settleDeadline) {
		if finalAudit.Placed+finalAudit.Degraded+finalAudit.Rejected == finalAudit.Routed {
			break
		}
		time.Sleep(5 * probeEvery)
		finalAudit = fleet.Balancer.Audit(time.Now())
	}
	wall := time.Since(wallStart)
	cancel()

	st := fleet.Stats
	rep := fedReport{
		Benchmark: "federation-chaos",
		Members:   *members, Jobs: *jobs, Overload: *overload, Seed: *seed,
		Routed:            st.Routed(),
		RouteFailures:     st.RouteFailures(),
		Spillovers:        st.Spillovers(),
		P50RouteMs:        metrics.Percentile(routeMs, 50),
		P99RouteMs:        metrics.Percentile(routeMs, 99),
		KilledMember:      killed,
		SlowMember:        slow,
		DetectionSeconds:  detection.Seconds(),
		MTTRSeconds:       mttr.Seconds(),
		DeadConfirms:      st.DeadConfirms(),
		FailoverReplaced:  st.FailoverReplaced(),
		DegradedQueued:    st.DegradedQueued(),
		DegradedRecovered: st.DegradedRecovered(),

		DrainedMember:       drained,
		DrainSeconds:        drainSecs,
		RollingSeconds:      rollSecs,
		MembersAliveAfter:   alive,
		MigrationsCompleted: st.MigrationsCompleted(),
		MigrationsAborted:   st.MigrationsAborted(),
		MigrationP99Ms:      metrics.Percentile(migMs, 99),

		AuditPlaced:       finalAudit.Placed,
		AuditDegraded:     finalAudit.Degraded,
		AuditRejected:     finalAudit.Rejected,
		AuditLost:         append([]string{}, finalAudit.Lost...),
		WallSeconds:       wall.Seconds(),
	}
	if rep.Routed > 0 {
		rep.SpilloverRate = float64(rep.Spillovers) / float64(rep.Routed)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}

	if *gate {
		fail := false
		check := func(ok bool, format string, args ...any) {
			status := "ok  "
			if !ok {
				status = "FAIL"
				fail = true
			}
			log.Printf("gate %s %s", status, fmt.Sprintf(format, args...))
		}
		check(len(rep.AuditLost) == 0,
			"zero acknowledged submissions lost (lost %d)", len(rep.AuditLost))
		check(mttr > 0 && mttr <= *maxMTTR,
			"failover MTTR %.3fs <= %s", rep.MTTRSeconds, *maxMTTR)
		check(rep.DeadConfirms == 1,
			"exactly the killed member confirmed dead (confirms %d)", rep.DeadConfirms)
		check(fleet.Scout.State(slow, time.Now()) != federation.Dead,
			"slow-but-alive member %s never confirmed dead", slow)
		check(rep.P99RouteMs <= float64(*maxP99)/float64(time.Millisecond),
			"p99 routing latency %.2fms <= %s", rep.P99RouteMs, *maxP99)
		check(rep.DrainSeconds > 0,
			"planned drain of %s completed (%.2fs)", rep.DrainedMember, rep.DrainSeconds)
		check(rep.RollingSeconds > 0,
			"rolling restart completed (%.2fs)", rep.RollingSeconds)
		check(rep.MembersAliveAfter == *members,
			"all %d members alive after the roll (alive %d)", *members, rep.MembersAliveAfter)
		check(rep.MigrationsCompleted > 0,
			"two-phase migrations ran (%d completed, %d aborted)",
			rep.MigrationsCompleted, rep.MigrationsAborted)
		check(rep.MigrationP99Ms <= float64(*maxMigP99)/float64(time.Millisecond),
			"migration p99 %.2fms <= %s", rep.MigrationP99Ms, *maxMigP99)
		check(rep.Routed > 0 && rep.AuditPlaced+rep.AuditDegraded+rep.AuditRejected == rep.Routed,
			"audit accounts for every routed app (%d placed + %d degraded + %d rejected of %d)",
			rep.AuditPlaced, rep.AuditDegraded, rep.AuditRejected, rep.Routed)
		if fail {
			os.Exit(1)
		}
	}
}
