// Command medea-server runs the Medea scheduler as a long-lived service:
// an HTTP/JSON API over a journaled core.Medea with admission control,
// per-tenant rate limiting, backpressure and graceful drain.
//
// Usage:
//
//	medea-server [-addr HOST:PORT] [-journal DIR] [flags]
//
// With -journal, the scheduler state is durable: the server recovers
// from the journal on startup (rebuilding the simulated cluster from the
// last checkpoint and replaying the write-ahead tail), and a SIGTERM
// drains gracefully — admission stops, queued work is flushed into the
// journaled core, a final checkpoint is written, and the process exits 0.
// A crash (SIGKILL) instead of a drain loses nothing committed either:
// the next incarnation re-adopts checkpointed placements and re-queues
// anything the WAL accepted but the checkpoint missed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medea/internal/cluster"
	"medea/internal/core"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/resource"
	"medea/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7075", "listen address (use :0 for an ephemeral port)")
	journalDir := flag.String("journal", "", "journal directory for durable state (empty = in-memory, volatile)")
	nodes := flag.Int("nodes", 64, "simulated cluster size (ignored when recovering from a checkpoint)")
	rackSize := flag.Int("rack-size", 8, "nodes per rack")
	nodeMemMB := flag.Int64("node-mem-mb", 16384, "memory per node (MB)")
	nodeCores := flag.Int64("node-cores", 8, "cores per node")
	algName := flag.String("alg", "nc", "placement algorithm: nc, tp, serial or ilp")
	interval := flag.Duration("interval", 250*time.Millisecond, "scheduling-cycle interval (paper's batching window)")
	budget := flag.Duration("budget", 500*time.Millisecond, "solver budget per cycle (request deadlines clamp it further)")
	checkpointEvery := flag.Int("checkpoint-every", 4, "journal records between checkpoints")
	poll := flag.Duration("poll", 20*time.Millisecond, "scheduling-loop poll granularity")
	queueCap := flag.Int("queue-cap", 1024, "bounded submit-queue capacity")
	rate := flag.Float64("rate", 0, "global submit budget in req/s, fair-shared across tenants (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-tenant burst allowance (0 = rate/4)")
	queueHigh := flag.Int("queue-high", 0, "backlog high watermark: shed submits at or above it (0 = queue-cap)")
	queueLow := flag.Int("queue-low", 0, "backlog low watermark: resume admitting at or below it (0 = high/2)")
	lagHigh := flag.Int("lag-high", 4096, "journal-lag high watermark (records since last checkpoint)")
	lagLow := flag.Int("lag-low", 0, "journal-lag low watermark (0 = high/2)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "budget for the final scheduling cycle during drain")
	flag.Parse()
	log.SetPrefix("medea-server: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	var alg lra.Algorithm
	switch *algName {
	case "nc":
		alg = lra.NewNodeCandidates()
	case "tp":
		alg = lra.NewTagPopularity()
	case "serial":
		alg = lra.NewSerial()
	case "ilp":
		alg = lra.NewILP()
	default:
		log.Fatalf("unknown algorithm %q (want nc, tp, serial or ilp)", *algName)
	}
	coreCfg := core.Config{
		Interval:        *interval,
		SolverBudget:    *budget,
		CheckpointEvery: *checkpointEvery,
	}

	med, jnl, err := buildScheduler(*journalDir, *nodes, *rackSize,
		resource.New(*nodeMemMB, *nodeCores), alg, coreCfg)
	if err != nil {
		log.Fatal(err)
	}

	s := server.New(med, server.Config{
		PollEvery: *poll,
		QueueCap:  *queueCap,
		Admission: server.AdmissionConfig{
			QueueHigh: pick(*queueHigh, *queueCap),
			QueueLow:  *queueLow,
			LagHigh:   *lagHigh,
			LagLow:    *lagLow,
		},
		RateLimit: server.RateLimitConfig{GlobalRate: *rate, Burst: *burst},
		Logf:      log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// The listen line goes to stdout so harnesses can scrape the port.
	fmt.Printf("medea-server listening on http://%s\n", ln.Addr())
	os.Stdout.Sync()

	loopCtx, stopLoop := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.Run(loopCtx)
	}()
	httpSrv := &http.Server{Handler: s.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigCh
	log.Printf("received %s, draining", sig)

	// Graceful drain: stop the loop, flush + final cycle + checkpoint,
	// then close the listener and journal. Exit 0 = nothing lost.
	stopLoop()
	<-loopDone
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Fatalf("journal close: %v", err)
		}
	}
	log.Printf("drained: %d deployed, %d pending journaled, exiting", med.DeployedLRAs(), med.PendingLRAs())
}

// buildScheduler opens (or skips) the journal and either recovers the
// previous incarnation's state or starts fresh. On recovery the
// simulated cluster is rebuilt from the last checkpoint's snapshot —
// placements journaled after that checkpoint have no containers in the
// rebuilt cluster, so recovery re-queues them for placement (they were
// accepted, not yet committed to a checkpoint; nothing checkpointed is
// lost).
func buildScheduler(dir string, nodes, rackSize int, capacity resource.Vector,
	alg lra.Algorithm, cfg core.Config) (*core.Medea, *journal.File, error) {
	if dir == "" {
		log.Printf("no -journal: state is volatile, a restart loses everything")
		return core.New(cluster.Grid(nodes, rackSize, capacity), alg, cfg), nil, nil
	}
	jnl, err := journal.OpenDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	cp, tail, err := jnl.Load()
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	now := time.Now()
	if cp == nil && len(tail) == 0 {
		med := core.New(cluster.Grid(nodes, rackSize, capacity), alg, cfg)
		if err := med.AttachJournal(jnl, now); err != nil {
			return nil, nil, fmt.Errorf("attach journal: %w", err)
		}
		log.Printf("fresh start: %d nodes, journal %s", nodes, dir)
		return med, jnl, nil
	}
	var c *cluster.Cluster
	if cp != nil && cp.Cluster != nil {
		if c, err = cluster.FromSnapshot(cp.Cluster); err != nil {
			return nil, nil, fmt.Errorf("rebuilding cluster from checkpoint: %w", err)
		}
	} else {
		c = cluster.Grid(nodes, rackSize, capacity)
	}
	med, err := core.Recover(jnl, c, alg, cfg, now)
	if err != nil {
		return nil, nil, fmt.Errorf("recover: %w", err)
	}
	r := med.Recovery
	log.Printf("recovered from %s: %d replayed, %d adopted, %d re-queued, %d orphans, %s; %d deployed, %d pending",
		dir, r.JournalReplayed, r.ContainersAdopted, r.ZombiesRequeued, r.OrphansReleased,
		r.RecoveryWallTime.Round(time.Microsecond), med.DeployedLRAs(), med.PendingLRAs())
	if jnl.RecoveredTornTail() {
		log.Printf("journal had a torn final WAL line (crash mid-write); dropped, state is consistent")
	}
	return med, jnl, nil
}

// pick returns v if set, else def.
func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
