package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The smoke test treats medea-server as a black box: build the real
// binary, drive it over HTTP, SIGKILL it mid-load, restart it on the
// same journal and verify zero committed placements were lost, then
// SIGTERM the survivor and check it drains to exit 0.

func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "medea-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type proc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startServer launches the binary and scrapes the listen address off
// stdout.
func startServer(t *testing.T, bin, journalDir string, extra ...string) *proc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-journal", journalDir,
		"-nodes", "32", "-rack-size", "8",
		"-interval", "50ms",
		"-poll", "10ms",
		"-checkpoint-every", "4",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "medea-server listening on "); ok {
				addrCh <- rest
				return
			}
		}
		close(addrCh)
	}()
	select {
	case base, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill()
			t.Fatal("server exited before announcing its address")
		}
		return &proc{cmd: cmd, base: base}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("timed out waiting for the server to listen")
		return nil
	}
}

func (p *proc) submit(t *testing.T, id string) int {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"id": id,
		"groups": []map[string]any{
			{"name": "w", "count": 2, "memoryMB": 512, "vcores": 1},
		},
	})
	resp, err := http.Post(p.base+"/v1/lras", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit %s: %v", id, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func (p *proc) state(t *testing.T, id string) string {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/lras/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	var sr struct {
		State string `json:"state"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return sr.State
}

func (p *proc) waitDeployed(t *testing.T, ids []string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		for p.state(t, id) != "deployed" {
			if time.Now().After(deadline) {
				t.Fatalf("%s not deployed within %s (state %q)", id, timeout, p.state(t, id))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

func TestSmokeKillRecoverDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildServer(t)
	journalDir := filepath.Join(t.TempDir(), "journal")

	// Incarnation 1: deploy ten LRAs, then SIGKILL with more in flight.
	p1 := startServer(t, bin, journalDir)
	var committed []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("app-%02d", i)
		if code := p1.submit(t, id); code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", id, code)
		}
		committed = append(committed, id)
	}
	p1.waitDeployed(t, committed, 15*time.Second)
	// More load so the kill lands mid-flight, then SIGKILL: no drain, no
	// final checkpoint — recovery must work from WAL + last checkpoint.
	for i := 10; i < 20; i++ {
		p1.submit(t, fmt.Sprintf("app-%02d", i))
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	p1.cmd.Wait()

	// Incarnation 2: recover from the same journal. Every placement the
	// first incarnation committed must come back deployed (checkpointed
	// ones are adopted; WAL-tail ones are re-queued and re-placed).
	p2 := startServer(t, bin, journalDir)
	p2.waitDeployed(t, committed, 15*time.Second)

	// New work still lands after recovery.
	if code := p2.submit(t, "post-recovery"); code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: status %d", code)
	}
	p2.waitDeployed(t, []string{"post-recovery"}, 15*time.Second)

	// SIGTERM under load: the drain must flush, checkpoint and exit 0.
	for i := 0; i < 5; i++ {
		p2.submit(t, fmt.Sprintf("drain-%02d", i))
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- p2.cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("drain exited non-zero: %v", err)
		}
	case <-time.After(15 * time.Second):
		p2.cmd.Process.Kill()
		t.Fatal("drain did not finish within 15s")
	}

	// Incarnation 3: everything from before the drain is still there.
	p3 := startServer(t, bin, journalDir)
	defer func() {
		p3.cmd.Process.Signal(syscall.SIGTERM)
		p3.cmd.Wait()
	}()
	p3.waitDeployed(t, append(committed, "post-recovery"), 15*time.Second)
}
