// Command medea-load replays the heavy-tailed Google-trace arrival
// process against an in-process medea server at a configurable overload
// factor, and records what the overload-control layer did about it:
// admitted/throttled/shed counts, per-tenant fairness, and the p50/p99
// submit latency of the admitted requests (the service-level promise: a
// shedding server answers fast; it does not queue without bound).
//
// Usage:
//
//	medea-load [-jobs N] [-overload F] [-rate R] [-out BENCH_server.json] [-gate]
//
// One tenant ("aggressor") offers several times its fair share; the
// light tenants stay inside theirs. With -gate the run fails unless
// the overload was actually shed (not absorbed), the aggressor was
// throttled while light tenants were not, and p99 admitted-submit
// latency stayed under -maxp99.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"medea/internal/cluster"
	"medea/internal/core"
	"medea/internal/journal"
	"medea/internal/lra"
	"medea/internal/metrics"
	"medea/internal/resource"
	"medea/internal/server"
	"medea/internal/workload"
)

type tenantResult struct {
	Tenant    string `json:"tenant"`
	Offered   int    `json:"offered"`
	Admitted  int    `json:"admitted"`
	Throttled int    `json:"throttled"`
}

type loadReport struct {
	Benchmark string  `json:"benchmark"`
	Jobs      int     `json:"jobs"`
	Overload  float64 `json:"overload"`
	Rate      float64 `json:"rate_per_sec"`
	Seed      int64   `json:"seed"`

	Offered       int `json:"offered"`
	Admitted      int `json:"admitted"`
	Throttled     int `json:"throttled"`
	ShedOverload  int `json:"shed_overload"`
	ShedQueueFull int `json:"shed_queue_full"`
	Expired       int `json:"expired"`

	P50AdmitMs float64 `json:"p50_admit_ms"`
	P99AdmitMs float64 `json:"p99_admit_ms"`
	P50AllMs   float64 `json:"p50_all_ms"`
	P99AllMs   float64 `json:"p99_all_ms"`

	Deployed int `json:"deployed"`
	Rejected int `json:"rejected"`

	Tenants []tenantResult `json:"tenants"`

	WallSeconds float64 `json:"wall_seconds"`
}

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	jobs := flag.Int("jobs", 400, "trace jobs to replay")
	overload := flag.Float64("overload", 10, "overload factor: divide the trace inter-arrival time by this")
	tenants := flag.Int("tenants", 3, "light tenants (one aggressor tenant is added on top)")
	aggressorMult := flag.Int("aggressor-mult", 2, "aggressor submissions per trace arrival")
	rate := flag.Float64("rate", 600, "server's global submit budget (req/s), fair-shared")
	burst := flag.Float64("burst", 20, "per-tenant burst allowance")
	nodes := flag.Int("nodes", 64, "simulated cluster size")
	queueHigh := flag.Int("queue-high", 64, "backlog high watermark")
	timeoutMs := flag.Int64("timeout-ms", 2000, "per-submission deadline (0 = none)")
	out := flag.String("out", "", "write the JSON report to this file")
	gate := flag.Bool("gate", false, "fail unless overload was shed, fairness held and p99 stayed under -maxp99")
	maxP99 := flag.Duration("maxp99", 250*time.Millisecond, "gate: max p99 admitted-submit latency")
	flag.Parse()
	log.SetPrefix("medea-load: ")
	log.SetFlags(0)

	// In-process server: journaled (memory) core behind the real HTTP
	// stack on a loopback listener, scheduling loop running for real.
	med := core.New(cluster.Grid(*nodes, 8, resource.New(16384, 8)),
		lra.NewNodeCandidates(),
		core.Config{Interval: 50 * time.Millisecond, CheckpointEvery: 64})
	if err := med.AttachJournal(journal.NewMemory(), time.Now()); err != nil {
		log.Fatalf("attach journal: %v", err)
	}
	s := server.New(med, server.Config{
		PollEvery: 10 * time.Millisecond,
		QueueCap:  1024,
		Admission: server.AdmissionConfig{QueueHigh: *queueHigh},
		RateLimit: server.RateLimitConfig{GlobalRate: *rate, Burst: *burst},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	// Keep enough idle connections that concurrent submits don't pay a
	// fresh TCP dial each (the default transport keeps only 2 per host).
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 256, MaxIdleConnsPerHost: 256,
	}}

	// The arrival process: heavy-tailed Google-trace jobs, inter-arrival
	// compressed by the overload factor. Each arrival is one LRA submit
	// from a round-robin light tenant, plus aggressor-mult copies from
	// the aggressor tenant.
	trace := workload.GoogleTrace(rand.New(rand.NewSource(*seed)), workload.GoogleTraceConfig{
		Jobs:             *jobs,
		MeanInterarrival: 50 * time.Millisecond,
		MeanTasksPerJob:  10,
		MeanDuration:     3 * time.Second,
	})

	type sample struct {
		tenant   string
		code     int
		errKind  string
		latency  time.Duration
		admitted bool
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	submit := func(id, tenant string, groupCount int) {
		defer wg.Done()
		body, _ := json.Marshal(server.SubmitRequest{
			ID:        id,
			Groups:    []server.GroupSpec{{Name: "w", Count: groupCount, MemoryMB: 256, VCores: 1}},
			Tenant:    tenant,
			TimeoutMs: *timeoutMs,
		})
		start := time.Now()
		resp, err := client.Post(base+"/v1/lras", "application/json", bytes.NewReader(body))
		lat := time.Since(start)
		if err != nil {
			log.Fatalf("submit %s: %v", id, err)
		}
		var er struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		mu.Lock()
		samples = append(samples, sample{
			tenant: tenant, code: resp.StatusCode, errKind: er.Error,
			latency: lat, admitted: resp.StatusCode == http.StatusAccepted,
		})
		mu.Unlock()
	}

	wallStart := time.Now()
	prev := time.Duration(0)
	for i, tt := range trace {
		gap := time.Duration(float64(tt.Arrival-prev) / *overload)
		prev = tt.Arrival
		if gap > 0 {
			time.Sleep(gap)
		}
		count := tt.Req.Count
		if count > 6 {
			count = 6
		}
		light := fmt.Sprintf("tenant-%d", i%*tenants)
		wg.Add(1)
		go submit(fmt.Sprintf("%s-l", tt.Job), light, count)
		for k := 0; k < *aggressorMult; k++ {
			wg.Add(1)
			go submit(fmt.Sprintf("%s-a%d", tt.Job, k), "aggressor", count)
		}
	}
	wg.Wait()

	// Let the backlog settle so deployed/rejected counts are stable.
	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		if st := fetchStats(base); st.QueueDepth == 0 && st.CorePending == 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	wall := time.Since(wallStart)
	st := fetchStats(base)
	cancel()

	// Aggregate.
	rep := loadReport{
		Benchmark: "server-overload",
		Jobs:      *jobs, Overload: *overload, Rate: *rate, Seed: *seed,
		Offered:       len(samples),
		Admitted:      st.Admitted,
		Throttled:     st.Throttled,
		ShedOverload:  st.ShedOverload,
		ShedQueueFull: st.ShedQueueFull,
		Expired:       st.Expired,
		Deployed:      st.Deployed,
		Rejected:      st.Rejected,
		WallSeconds:   wall.Seconds(),
	}
	var admitMs, allMs []float64
	perTenant := map[string]*tenantResult{}
	for _, sm := range samples {
		ms := float64(sm.latency) / float64(time.Millisecond)
		allMs = append(allMs, ms)
		tr := perTenant[sm.tenant]
		if tr == nil {
			tr = &tenantResult{Tenant: sm.tenant}
			perTenant[sm.tenant] = tr
		}
		tr.Offered++
		if sm.admitted {
			admitMs = append(admitMs, ms)
			tr.Admitted++
		} else if sm.errKind == "throttled" {
			tr.Throttled++
		}
	}
	rep.P50AdmitMs = metrics.Percentile(admitMs, 50)
	rep.P99AdmitMs = metrics.Percentile(admitMs, 99)
	rep.P50AllMs = metrics.Percentile(allMs, 50)
	rep.P99AllMs = metrics.Percentile(allMs, 99)
	for _, tn := range sortedKeys(perTenant) {
		rep.Tenants = append(rep.Tenants, *perTenant[tn])
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}

	if *gate {
		fail := false
		check := func(ok bool, format string, args ...any) {
			status := "ok  "
			if !ok {
				status = "FAIL"
				fail = true
			}
			log.Printf("gate %s %s", status, fmt.Sprintf(format, args...))
		}
		check(rep.P99AdmitMs <= float64(*maxP99)/float64(time.Millisecond),
			"p99 admitted-submit latency %.2fms <= %s", rep.P99AdmitMs, *maxP99)
		check(rep.Throttled+rep.ShedOverload+rep.ShedQueueFull > 0,
			"overload was shed, not absorbed (throttled %d, shed %d+%d)",
			rep.Throttled, rep.ShedOverload, rep.ShedQueueFull)
		agg := perTenant["aggressor"]
		check(agg != nil && agg.Throttled > 0,
			"aggressor over its share was throttled (%d)", throttledOf(agg))
		lightThrottled := 0
		for tn, tr := range perTenant {
			if tn != "aggressor" {
				lightThrottled += tr.Throttled
			}
		}
		check(lightThrottled == 0,
			"light tenants inside their share were never throttled (%d)", lightThrottled)
		if fail {
			os.Exit(1)
		}
	}
}

type statsView struct {
	Admitted      int `json:"admitted"`
	Throttled     int `json:"throttled"`
	ShedOverload  int `json:"shed_overload"`
	ShedQueueFull int `json:"shed_queue_full"`
	Expired       int `json:"expired"`
	QueueDepth    int `json:"queue_depth"`
	CorePending   int `json:"core_pending"`
	Deployed      int `json:"deployed"`
	Rejected      int `json:"rejected"`
}

func fetchStats(base string) statsView {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st statsView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decoding stats: %v", err)
	}
	return st
}

func sortedKeys(m map[string]*tenantResult) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func throttledOf(tr *tenantResult) int {
	if tr == nil {
		return 0
	}
	return tr.Throttled
}
