// Command medea-dst runs the deterministic simulation harness: the full
// federation stack — journaled scheduler cores behind their serving
// APIs, scout, balancer — on virtual time under seeded fault schedules
// (member crashes with torn journal tails, partitions, slow-tail
// networks, node failures drawn from service-unit traces, racing client
// traffic), with cross-layer invariants checked after every event.
//
// Modes:
//
//	medea-dst -seeds 200 -events 500          sweep seeds 1..200
//	medea-dst -seed 42                        one seed, run twice, traces must match byte-for-byte
//	medea-dst -replay dst-repro.json          re-run a minimized failure artifact
//	medea-dst -long -max-wall 10m             open-ended sweep until the wall budget runs out
//	medea-dst -seeds 50 -mixed-solver         ILP members with runtime exact/auto/approx flips
//	medea-dst -seeds 50 -migrations           mix two-phase migrations, drains and rolling restarts in
//
// On a violation the failing schedule is minimized by delta debugging
// and written as a replayable JSON artifact (-artifact).
//
// Exit codes: 0 pass; 1 invariant violation (artifact written);
// 2 nondeterminism (same schedule, different traces); 3 usage or
// internal error; 4 replayed artifact did not reproduce.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"medea/internal/dst"
)

const (
	exitPass      = 0
	exitViolation = 1
	exitNondet    = 2
	exitUsage     = 3
	exitNoRepro   = 4
)

func main() {
	var (
		seeds    = flag.Int("seeds", 100, "sweep seeds 1..N")
		events   = flag.Int("events", 400, "events per seed")
		seed     = flag.Int64("seed", 0, "run a single seed (twice, comparing traces) instead of sweeping")
		replay   = flag.String("replay", "", "replay a failure artifact instead of generating schedules")
		artifact = flag.String("artifact", "dst-repro.json", "where to write the minimized failure artifact")
		inject   = flag.Bool("inject", false, "inject a deliberate ledger hole (harness self-test: must be caught)")
		members  = flag.Int("members", 0, "member clusters per fleet (0 = default)")
		nodes    = flag.Int("nodes", 0, "nodes per member (0 = default)")
		long     = flag.Bool("long", false, "ignore -seeds; sweep until -max-wall is spent")
		maxWall  = flag.Duration("max-wall", 10*time.Minute, "wall-clock budget for -long sweeps")
		mixed    = flag.Bool("mixed-solver", false, "run members on the ILP scheduler and mix exact/auto/approx mode flips into the schedule")
		migrate  = flag.Bool("migrations", false, "mix two-phase migrations (with armed crash points), member drains and rolling restarts into the schedule")
		verbose  = flag.Bool("v", false, "print the full trace of failing runs")
	)
	flag.Parse()

	switch {
	case *replay != "":
		os.Exit(runReplay(*replay, *verbose))
	case *seed != 0:
		cfg := dst.Config{Seed: *seed, Events: *events, Members: *members, Nodes: *nodes, Inject: *inject, MixedSolver: *mixed, Migrations: *migrate}
		os.Exit(runOne(cfg, *artifact, *verbose))
	default:
		os.Exit(runSweep(*seeds, *events, *members, *nodes, *inject, *mixed, *migrate, *long, *maxWall, *artifact, *verbose))
	}
}

// runReplay re-runs a minimized artifact and checks the recorded
// violation reappears.
func runReplay(path string, verbose bool) int {
	art, err := dst.ReadArtifact(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medea-dst: %v\n", err)
		return exitUsage
	}
	want := "(none)"
	if art.Violation != nil {
		want = art.Violation.Name
	}
	fmt.Printf("replaying %s: seed=%d events=%d (minimized from %d), expecting %s\n",
		path, art.Seed, len(art.Events), art.FullEvents, want)
	r := art.Replay()
	if verbose {
		os.Stdout.Write(r.Trace)
	}
	if r.Violation == nil {
		fmt.Println("replay: no violation reproduced")
		return exitNoRepro
	}
	if art.Violation != nil && r.Violation.Name != art.Violation.Name {
		fmt.Printf("replay: got %s, artifact recorded %s\n", r.Violation.Name, art.Violation.Name)
		return exitNoRepro
	}
	fmt.Printf("replay: reproduced %v\n", r.Violation)
	return exitPass
}

// runOne runs a single seed twice — the determinism gate — then
// minimizes and writes an artifact if the run found a violation.
func runOne(cfg dst.Config, artifactPath string, verbose bool) int {
	events := dst.Generate(cfg)
	r1 := dst.Run(cfg, events)
	r2 := dst.Run(cfg, events)
	if !bytes.Equal(r1.Trace, r2.Trace) {
		fmt.Fprintf(os.Stderr, "medea-dst: seed %d: two runs of the same schedule produced different traces\n", cfg.Seed)
		return exitNondet
	}
	if verbose || r1.Violation != nil {
		os.Stdout.Write(r1.Trace)
	}
	if r1.Violation == nil {
		fmt.Printf("seed %d: pass (%d events, traces byte-identical across two runs)\n", cfg.Seed, r1.Executed)
		return exitPass
	}
	return reportAndMinimize(cfg, events, r1, artifactPath)
}

// runSweep runs many seeds (in parallel workers; each run is itself
// single-threaded and deterministic) and reports the lowest failing
// seed, minimized.
func runSweep(seeds, events, members, nodes int, inject, mixed, migrate, long bool, maxWall time.Duration, artifactPath string, verbose bool) int {
	start := time.Now()
	cfgFor := func(s int64) dst.Config {
		return dst.Config{Seed: s, Events: events, Members: members, Nodes: nodes, Inject: inject, MixedSolver: mixed, Migrations: migrate}
	}

	type fail struct {
		cfg dst.Config
		res *dst.Result
	}
	var (
		mu       sync.Mutex
		failures []fail
		ran      int
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	work := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				cfg := cfgFor(s)
				r := dst.RunSeed(cfg)
				mu.Lock()
				ran++
				if r.Violation != nil {
					failures = append(failures, fail{cfg, r})
				}
				mu.Unlock()
			}
		}()
	}
	if long {
		var s int64
		for s = 1; time.Since(start) < maxWall; s++ {
			work <- s
		}
	} else {
		for s := int64(1); s <= int64(seeds); s++ {
			work <- s
		}
	}
	close(work)
	wg.Wait()

	if len(failures) == 0 {
		fmt.Printf("dst: %d seeds x %d events: all passed (%.1fs)\n", ran, events, time.Since(start).Seconds())
		return exitPass
	}
	// Report the lowest failing seed so repeated runs chase the same bug.
	min := failures[0]
	for _, f := range failures[1:] {
		if f.cfg.Seed < min.cfg.Seed {
			min = f
		}
	}
	fmt.Printf("dst: %d of %d seeds failed; minimizing seed %d\n", len(failures), ran, min.cfg.Seed)
	if verbose {
		os.Stdout.Write(min.res.Trace)
	}
	return reportAndMinimize(min.cfg, dst.Generate(min.cfg), min.res, artifactPath)
}

// reportAndMinimize shrinks the failing schedule, writes the replay
// artifact, and prints how to reproduce.
func reportAndMinimize(cfg dst.Config, events []dst.Event, r *dst.Result, artifactPath string) int {
	fmt.Printf("seed %d: %v\n", cfg.Seed, r.Violation)
	minimized := dst.Minimize(cfg, events, r.Violation.Name)
	fmt.Printf("minimized schedule: %d -> %d events\n", len(events), len(minimized))
	art := dst.NewArtifact(cfg, r.Violation, minimized, len(events))
	if err := dst.WriteArtifact(artifactPath, art); err != nil {
		fmt.Fprintf(os.Stderr, "medea-dst: writing artifact: %v\n", err)
		return exitUsage
	}
	fmt.Printf("artifact written: %s (replay with: medea-dst -replay %s)\n", artifactPath, artifactPath)
	return exitViolation
}
