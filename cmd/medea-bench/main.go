// Command medea-bench measures the parallel placement engine and emits
// machine-readable benchmark artifacts: BENCH_ilp.json for the raw
// branch-and-bound solver and BENCH_pipeline.json for the end-to-end
// scheduling cycle. Each suite runs at every requested CPU count
// (GOMAXPROCS and solver workers move together), so the artifacts
// record the parallel scaling curve alongside ns/op, allocs/op and the
// solver deadline-hit rate.
//
// The ILP suite is benchmarked per solving path: exact search with cold
// allocation, exact search over a pooled SolverArena, exact search
// warm-started from a prior solution, and the LP-relaxation rounding
// fast path on a placement-shaped fixture. BENCH_ilp.json carries the
// per-path numbers plus derived comparisons (arena allocation
// reduction, warm-vs-cold speedup, approx-vs-exact speedup and
// objective ratio).
//
// With -gate the binary enforces the CI speedup regression gate: the
// large pipeline fixture at the highest CPU count must be at least
// -speedup times faster than at one CPU. The gate auto-skips on hosts
// with fewer physical CPUs than the gated count — a single-core
// container cannot exhibit parallel speedup, and failing there would
// only punish the wrong machine. -maxallocs / -maxbytes cap the
// arena-backed exact paths' allocs/op and bytes/op — the canary for
// accidental per-node garbage creeping back into the solver hot loop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/core"
	"medea/internal/ilp"
	"medea/internal/lra"
	"medea/internal/resource"
)

type benchResult struct {
	CPU             int     `json:"cpu"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Iterations      int     `json:"iterations"`
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
}

type benchFile struct {
	Benchmark string        `json:"benchmark"`
	Fixture   string        `json:"fixture"`
	NumCPU    int           `json:"num_cpu"`
	Count     int           `json:"count"`
	Results   []benchResult `json:"results"`
}

// pathFile is one solving path's scaling curve in BENCH_ilp.json.
type pathFile struct {
	Path    string        `json:"path"`
	Fixture string        `json:"fixture"`
	Results []benchResult `json:"results"`
}

// comparisonSet holds the derived cross-path numbers. The allocation
// ratio compares the knapsack paths at the first benchmarked CPU count;
// the warm and approx numbers come from single timed solves of the
// large placement fixture — cold exact is time-boxed (at this size it
// cannot close the tree, which is exactly why the warm and approximate
// paths exist), approx runs free, and warm re-solves seeded with the
// approx solution under the production 1% relative gap.
type comparisonSet struct {
	ArenaAllocsReduction float64 `json:"arena_allocs_reduction"`
	WarmVsColdSpeedup    float64 `json:"warm_vs_cold_speedup"`
	ApproxVsExactSpeedup float64 `json:"approx_vs_exact_speedup"`
	ApproxObjectiveRatio float64 `json:"approx_objective_ratio"`
	ExactObjective       float64 `json:"exact_objective"`
	ApproxObjective      float64 `json:"approx_objective"`
	ExactProvedOptimal   bool    `json:"exact_proved_optimal"`
	ExactBudget          string  `json:"exact_budget"`
}

type ilpBenchFile struct {
	Benchmark   string        `json:"benchmark"`
	NumCPU      int           `json:"num_cpu"`
	Count       int           `json:"count"`
	Paths       []pathFile    `json:"paths"`
	Comparisons comparisonSet `json:"comparisons"`
}

const knapsackFixture = "correlated 0/1 knapsack, 34 vars, full solve"
const placementFixture = "placement model, 32 gangs x 10 nodes, 320 int vars"

// ilpFixture builds the solver benchmark model: a strongly correlated
// 0/1 knapsack (profit = weight + constant, capacity = half the total
// weight). The LP bound is nearly flat across subtrees, so the search
// genuinely explores the frontier — exactly the shape the parallel
// worker pool exists for.
func ilpFixture() (*ilp.Model, int) {
	const n = 34
	m := ilp.NewModel(ilp.Maximize)
	terms := make([]ilp.Term, n)
	total := 0.0
	for j := 0; j < n; j++ {
		v := m.Binary("x")
		w := float64(13 + (j*7919)%37)
		m.SetObjective(v, w+10)
		terms[j] = ilp.T(w, v)
		total += w
	}
	m.AddLE("cap", float64(int(total/2)), terms...)
	return m, n
}

// lraFixture builds the large placement-shaped model: 32 container
// gangs assigned across 10 nodes (320 general-integer variables),
// gang-size rows per app and a shared capacity row per node. The
// fractional capacities keep the LP optimum fractional, so the
// approximate path genuinely rounds, and the search tree is far too
// wide for exact search to close — the regime the relaxation fast path
// is for.
func lraFixture() *ilp.Model {
	const groups, nodes, perGroup = 32, 10, 6
	m := ilp.NewModel(ilp.Maximize)
	nodeTerms := make([][]ilp.Term, nodes)
	for g := 0; g < groups; g++ {
		gang := make([]ilp.Term, nodes)
		for n := 0; n < nodes; n++ {
			v := m.Int(fmt.Sprintf("y_%d_%d", g, n), 0, perGroup)
			m.SetObjective(v, 1+float64((g*7+n*3)%5))
			nodeTerms[n] = append(nodeTerms[n], ilp.T(float64(1+(g*13+n*5)%2), v))
			gang[n] = ilp.T(1, v)
		}
		m.AddLE(fmt.Sprintf("gang_%d", g), perGroup, gang...)
	}
	for n := 0; n < nodes; n++ {
		m.AddLE(fmt.Sprintf("cap_%d", n), 28.5, nodeTerms[n]...)
	}
	return m
}

// runSolves wraps testing.Benchmark around a solve loop `count` times
// and keeps the best (lowest ns/op) run.
func runSolves(workers, count int, loop func(b *testing.B) (iters, hits int)) benchResult {
	best := benchResult{Workers: workers}
	for c := 0; c < count; c++ {
		iters, hits := 0, 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			i, h := loop(b)
			iters += i
			hits += h
		})
		res := benchResult{
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if iters > 0 {
			res.DeadlineHitRate = float64(hits) / float64(iters)
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best
}

// benchExactCold is the baseline: every solve allocates its working set
// from scratch (no arena, no warm start).
func benchExactCold(workers, count int) benchResult {
	m, _ := ilpFixture()
	return runSolves(workers, count, func(b *testing.B) (int, int) {
		iters, hits := 0, 0
		for i := 0; i < b.N; i++ {
			sol := m.Solve(ilp.Options{Workers: workers, MaxNodes: 200000})
			iters++
			if sol.DeadlineHit {
				hits++
			}
			if sol.Status != ilp.Optimal {
				b.Fatalf("cold solve ended %v, want Optimal", sol.Status)
			}
		}
		return iters, hits
	})
}

// benchExactArena reuses one SolverArena across every solve — the
// production shape: the LRA scheduler checks an arena out of a pool per
// Place call, so steady-state solves run out of recycled memory.
func benchExactArena(workers, count int) benchResult {
	m, _ := ilpFixture()
	arena := ilp.NewSolverArena()
	return runSolves(workers, count, func(b *testing.B) (int, int) {
		iters, hits := 0, 0
		for i := 0; i < b.N; i++ {
			sol := m.Solve(ilp.Options{Workers: workers, MaxNodes: 200000, Arena: arena})
			iters++
			if sol.DeadlineHit {
				hits++
			}
			if sol.Status != ilp.Optimal {
				b.Fatalf("arena solve ended %v, want Optimal", sol.Status)
			}
		}
		return iters, hits
	})
}

// benchExactWarm measures the steady-state re-solve: the placement
// fixture warm-started from the previous cycle's solution over a pooled
// arena, with the scheduler's production 1% relative gap. The warm
// incumbent meets the root bound almost immediately, so this is the
// cost a scheduling cycle pays when nothing changed — the case
// cross-cycle memory exists for.
func benchExactWarm(workers, count int) benchResult {
	m := lraFixture()
	arena := ilp.NewSolverArena()
	warm := prevCycleSolution(m, workers, arena)
	return runSolves(workers, count, func(b *testing.B) (int, int) {
		iters, hits := 0, 0
		for i := 0; i < b.N; i++ {
			sol := m.Solve(ilp.Options{
				Workers: workers, MaxNodes: 200000, RelGap: 0.01, Arena: arena,
				WarmStarts: []map[ilp.Var]float64{warm},
			})
			iters++
			if sol.DeadlineHit {
				hits++
			}
			if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
				b.Fatalf("warm solve ended %v", sol.Status)
			}
			if !sol.WarmUsed {
				b.Fatal("warm start was not used")
			}
		}
		return iters, hits
	})
}

// prevCycleSolution plays the role of the scheduler's cycle memory: a
// full integer solution of m from "last cycle" (produced by the
// relaxation path, which is how a first placement of this size lands in
// production too).
func prevCycleSolution(m *ilp.Model, workers int, arena *ilp.SolverArena) map[ilp.Var]float64 {
	ref := m.Solve(ilp.Options{Mode: ilp.ModeApprox, Workers: workers, Arena: arena})
	if ref.Status != ilp.Optimal && ref.Status != ilp.Feasible {
		panic(fmt.Sprintf("warm reference solve ended %v", ref.Status))
	}
	warm := make(map[ilp.Var]float64, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		warm[ilp.Var(j)] = ref.Value(ilp.Var(j))
	}
	return warm
}

// benchApprox times the LP-relaxation + rounding fast path on the large
// placement fixture (the exact tree there is unclosable; see
// approxComparisons for the quality side of the trade).
func benchApprox(workers, count int) benchResult {
	m := lraFixture()
	arena := ilp.NewSolverArena()
	return runSolves(workers, count, func(b *testing.B) (int, int) {
		iters, hits := 0, 0
		for i := 0; i < b.N; i++ {
			sol := m.Solve(ilp.Options{Mode: ilp.ModeApprox, Workers: workers, Arena: arena})
			iters++
			if sol.DeadlineHit {
				hits++
			}
			if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
				b.Fatalf("approx solve ended %v", sol.Status)
			}
		}
		return iters, hits
	})
}

// fixtureComparisons runs the placement fixture once through each path
// — exact time-boxed to exactBudget (it cannot close 320 integer vars),
// approx unboxed, and a warm re-solve seeded with the approx solution —
// and reports relative speed and objective quality.
func fixtureComparisons(workers int, exactBudget time.Duration, c *comparisonSet) {
	m := lraFixture()
	arena := ilp.NewSolverArena()

	t0 := time.Now()
	exact := m.Solve(ilp.Options{
		Workers: workers, RelGap: 0.01, Arena: arena,
		Deadline: t0.Add(exactBudget), MaxNodes: 500000,
	})
	exactNs := time.Since(t0)

	t0 = time.Now()
	approx := m.Solve(ilp.Options{Mode: ilp.ModeApprox, Workers: workers, Arena: arena})
	approxNs := time.Since(t0)

	warm := make(map[ilp.Var]float64, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		warm[ilp.Var(j)] = approx.Value(ilp.Var(j))
	}
	t0 = time.Now()
	m.Solve(ilp.Options{
		Workers: workers, RelGap: 0.01, MaxNodes: 500000, Arena: arena,
		WarmStarts: []map[ilp.Var]float64{warm},
	})
	warmNs := time.Since(t0)

	c.ExactObjective = exact.Objective
	c.ApproxObjective = approx.Objective
	c.ExactProvedOptimal = exact.Status == ilp.Optimal && !exact.DeadlineHit
	c.ExactBudget = exactBudget.String()
	if approxNs > 0 {
		c.ApproxVsExactSpeedup = float64(exactNs) / float64(approxNs)
	}
	if warmNs > 0 {
		c.WarmVsColdSpeedup = float64(exactNs) / float64(warmNs)
	}
	if exact.Objective != 0 {
		c.ApproxObjectiveRatio = approx.Objective / exact.Objective
	}
}

// pipelineApp is one LRA of the pipeline fixture: four containers that
// must spread across nodes, tagged per app so the union-find partition
// sees independent components and solves them concurrently.
func pipelineApp(i int) *lra.Application {
	id := fmt.Sprintf("svc-%02d", i)
	self := constraint.E(constraint.AppIDTag(id))
	return &lra.Application{
		ID: id,
		Groups: []lra.ContainerGroup{{
			Name: "w", Count: 4, Demand: resource.New(200, 4),
			Tags: []constraint.Tag{constraint.Tag(fmt.Sprintf("t%d", i))},
		}},
		Constraints: []constraint.Constraint{
			constraint.New(constraint.AntiAffinity(self, self, constraint.Node)),
		},
	}
}

// benchPipeline times one full scheduling cycle — cluster build, batch
// submission and RunCycle over 12 independent ILP sub-batches on a
// 64-node grid — per iteration. This is the "large fixture" the CI
// speedup gate compares across CPU counts.
func benchPipeline(workers, count int) benchResult {
	return runSolves(workers, count, func(b *testing.B) (int, int) {
		iters, hits := 0, 0
		for i := 0; i < b.N; i++ {
			cl := cluster.Grid(64, 4, resource.New(4000, 64))
			m := core.New(cl, lra.NewILP(), core.Config{
				Interval: time.Second,
				Options:  lra.Options{Workers: workers, SolverBudget: 30 * time.Second},
			})
			now := time.Unix(0, 0)
			for a := 0; a < 12; a++ {
				if err := m.SubmitLRA(pipelineApp(a), now); err != nil {
					b.Fatalf("submit: %v", err)
				}
			}
			now = now.Add(time.Second)
			stats := m.RunCycle(now)
			if stats.Placed != 12 {
				b.Fatalf("cycle placed %d/12", stats.Placed)
			}
			iters++
			if m.Pipeline.DeadlineHits() > 0 {
				hits++
			}
		}
		return iters, hits
	})
}

func writeJSON(dir, name string, f any) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	cpuList := flag.String("cpu", "1,4,8", "comma-separated CPU counts to benchmark at")
	count := flag.Int("count", 3, "runs per configuration; the best (lowest ns/op) is kept")
	gate := flag.Bool("gate", false, "enforce the parallel speedup gate on the pipeline fixture")
	minSpeedup := flag.Float64("speedup", 2.0, "required speedup of the highest CPU count over 1 CPU")
	maxAllocs := flag.Int64("maxallocs", 0, "fail if an arena-backed exact solve exceeds this many allocs/op (0 = off)")
	maxBytes := flag.Int64("maxbytes", 0, "fail if an arena-backed exact solve exceeds this many bytes/op (0 = off)")
	exactBudget := flag.Duration("exact-budget", 2*time.Second, "time box for the exact reference solve of the placement fixture")
	outDir := flag.String("out", ".", "directory for BENCH_*.json artifacts")
	flag.Parse()

	cpus, err := parseCPUs(*cpuList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	// ILP suite: one scaling curve per solving path.
	paths := []struct {
		name, fixture string
		run           func(workers, count int) benchResult
	}{
		{"exact-cold", knapsackFixture, benchExactCold},
		{"exact-arena", knapsackFixture, benchExactArena},
		{"exact-warm", placementFixture, benchExactWarm},
		{"approx", placementFixture, benchApprox},
	}
	ilpFile := ilpBenchFile{Benchmark: "ilp-solve", NumCPU: runtime.NumCPU(), Count: *count}
	pathAt := make(map[string]benchResult) // path name -> result at cpus[0]
	var gated []pathFile
	for _, p := range paths {
		pf := pathFile{Path: p.name, Fixture: p.fixture}
		for _, cpu := range cpus {
			runtime.GOMAXPROCS(cpu)
			res := p.run(cpu, *count)
			res.CPU = cpu
			pf.Results = append(pf.Results, res)
			fmt.Printf("ilp/%-12s cpu=%d  %12d ns/op  %8d allocs/op  %10d B/op  deadline-hit %.2f\n",
				p.name, cpu, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.DeadlineHitRate)
		}
		runtime.GOMAXPROCS(prev)
		pathAt[p.name] = pf.Results[0]
		ilpFile.Paths = append(ilpFile.Paths, pf)
		if p.name == "exact-arena" || p.name == "exact-warm" {
			gated = append(gated, pf)
		}
	}

	cold, arena := pathAt["exact-cold"], pathAt["exact-arena"]
	if arena.AllocsPerOp > 0 {
		ilpFile.Comparisons.ArenaAllocsReduction = float64(cold.AllocsPerOp) / float64(arena.AllocsPerOp)
	}
	fixtureComparisons(cpus[len(cpus)-1], *exactBudget, &ilpFile.Comparisons)
	fmt.Printf("ilp comparisons: arena cuts allocs %.0fx; on the placement fixture a warm "+
		"re-solve is %.0fx and approx %.0fx faster than a %s cold exact box, approx at %.3f "+
		"of the box's objective\n",
		ilpFile.Comparisons.ArenaAllocsReduction, ilpFile.Comparisons.WarmVsColdSpeedup,
		ilpFile.Comparisons.ApproxVsExactSpeedup, ilpFile.Comparisons.ExactBudget,
		ilpFile.Comparisons.ApproxObjectiveRatio)
	if err := writeJSON(*outDir, "BENCH_ilp.json", ilpFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Pipeline suite (unchanged shape; feeds the speedup gate).
	pipeFile := benchFile{
		Benchmark: "pipeline-cycle",
		Fixture:   "64-node grid, 12 anti-affinity LRAs, build + one RunCycle",
		NumCPU:    runtime.NumCPU(), Count: *count,
	}
	for _, cpu := range cpus {
		runtime.GOMAXPROCS(cpu)
		res := benchPipeline(cpu, *count)
		res.CPU = cpu
		pipeFile.Results = append(pipeFile.Results, res)
		fmt.Printf("pipeline-cycle   cpu=%d  %12d ns/op  %8d allocs/op  deadline-hit %.2f\n",
			cpu, res.NsPerOp, res.AllocsPerOp, res.DeadlineHitRate)
	}
	runtime.GOMAXPROCS(prev)
	if err := writeJSON(*outDir, "BENCH_pipeline.json", pipeFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The allocation gates are CPU-count independent: an arena-backed
	// exact solve of the knapsack fixture must stay within its allocs/op
	// and bytes/op caps whatever the parallelism. This is the cheap
	// canary for accidental per-node or per-candidate garbage returning
	// to the solver hot path.
	if *maxAllocs > 0 || *maxBytes > 0 {
		for _, pf := range gated {
			for _, r := range pf.Results {
				if *maxAllocs > 0 && r.AllocsPerOp > *maxAllocs {
					fmt.Fprintf(os.Stderr, "gate: FAIL — %s at %d CPUs allocates %d/op, cap is %d\n",
						pf.Path, r.CPU, r.AllocsPerOp, *maxAllocs)
					os.Exit(1)
				}
				if *maxBytes > 0 && r.BytesPerOp > *maxBytes {
					fmt.Fprintf(os.Stderr, "gate: FAIL — %s at %d CPUs allocates %d B/op, cap is %d\n",
						pf.Path, r.CPU, r.BytesPerOp, *maxBytes)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("gate: OK — arena-backed exact paths within allocs/bytes caps at every CPU count\n")
	}

	if *gate {
		hi := cpus[len(cpus)-1]
		if runtime.NumCPU() < hi {
			fmt.Printf("gate: skipped — host has %d CPUs, gate needs %d to be meaningful\n",
				runtime.NumCPU(), hi)
			return
		}
		var base, top int64
		for _, r := range pipeFile.Results {
			if r.CPU == 1 {
				base = r.NsPerOp
			}
			if r.CPU == hi {
				top = r.NsPerOp
			}
		}
		if base == 0 || top == 0 {
			fmt.Fprintln(os.Stderr, "gate: -cpu list must include 1 and the gated count")
			os.Exit(2)
		}
		speedup := float64(base) / float64(top)
		if speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "gate: FAIL — pipeline speedup at %d CPUs is %.2fx, need >= %.2fx\n",
				hi, speedup, *minSpeedup)
			os.Exit(1)
		}
		fmt.Printf("gate: OK — pipeline speedup at %d CPUs is %.2fx\n", hi, speedup)
	}
}
