// Command medea-bench measures the parallel placement engine and emits
// machine-readable benchmark artifacts: BENCH_ilp.json for the raw
// branch-and-bound solver and BENCH_pipeline.json for the end-to-end
// scheduling cycle. Each suite runs at every requested CPU count
// (GOMAXPROCS and solver workers move together), so the artifacts
// record the parallel scaling curve alongside ns/op, allocs/op and the
// solver deadline-hit rate.
//
// With -gate the binary enforces the CI speedup regression gate: the
// large pipeline fixture at the highest CPU count must be at least
// -speedup times faster than at one CPU. The gate auto-skips on hosts
// with fewer physical CPUs than the gated count — a single-core
// container cannot exhibit parallel speedup, and failing there would
// only punish the wrong machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"medea/internal/cluster"
	"medea/internal/constraint"
	"medea/internal/core"
	"medea/internal/ilp"
	"medea/internal/lra"
	"medea/internal/resource"
)

type benchResult struct {
	CPU             int     `json:"cpu"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Iterations      int     `json:"iterations"`
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
}

type benchFile struct {
	Benchmark string        `json:"benchmark"`
	Fixture   string        `json:"fixture"`
	NumCPU    int           `json:"num_cpu"`
	Count     int           `json:"count"`
	Results   []benchResult `json:"results"`
}

// ilpFixture builds the solver benchmark model: a strongly correlated
// 0/1 knapsack (profit = weight + constant, capacity = half the total
// weight). The LP bound is nearly flat across subtrees, so the search
// genuinely explores the frontier — exactly the shape the parallel
// worker pool exists for.
func ilpFixture() (*ilp.Model, int) {
	const n = 34
	m := ilp.NewModel(ilp.Maximize)
	terms := make([]ilp.Term, n)
	total := 0.0
	for j := 0; j < n; j++ {
		v := m.Binary("x")
		w := float64(13 + (j*7919)%37)
		m.SetObjective(v, w+10)
		terms[j] = ilp.T(w, v)
		total += w
	}
	m.AddLE("cap", float64(int(total/2)), terms...)
	return m, n
}

// benchILP times one full solve of the knapsack fixture per iteration.
func benchILP(workers, count int) benchResult {
	m, _ := ilpFixture()
	best := benchResult{Workers: workers}
	for c := 0; c < count; c++ {
		iters, hits := 0, 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sol := m.Solve(ilp.Options{Workers: workers, MaxNodes: 200000})
				iters++
				if sol.DeadlineHit {
					hits++
				}
				if sol.Status != ilp.Optimal {
					b.Fatalf("fixture solve ended %v, want Optimal", sol.Status)
				}
			}
		})
		res := benchResult{
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if iters > 0 {
			res.DeadlineHitRate = float64(hits) / float64(iters)
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best
}

// pipelineApp is one LRA of the pipeline fixture: four containers that
// must spread across nodes, tagged per app so the union-find partition
// sees independent components and solves them concurrently.
func pipelineApp(i int) *lra.Application {
	id := fmt.Sprintf("svc-%02d", i)
	self := constraint.E(constraint.AppIDTag(id))
	return &lra.Application{
		ID: id,
		Groups: []lra.ContainerGroup{{
			Name: "w", Count: 4, Demand: resource.New(200, 4),
			Tags: []constraint.Tag{constraint.Tag(fmt.Sprintf("t%d", i))},
		}},
		Constraints: []constraint.Constraint{
			constraint.New(constraint.AntiAffinity(self, self, constraint.Node)),
		},
	}
}

// benchPipeline times one full scheduling cycle — cluster build, batch
// submission and RunCycle over 12 independent ILP sub-batches on a
// 64-node grid — per iteration. This is the "large fixture" the CI
// speedup gate compares across CPU counts.
func benchPipeline(workers, count int) benchResult {
	best := benchResult{Workers: workers}
	for c := 0; c < count; c++ {
		iters, hits := 0, 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl := cluster.Grid(64, 4, resource.New(4000, 64))
				m := core.New(cl, lra.NewILP(), core.Config{
					Interval: time.Second,
					Options:  lra.Options{Workers: workers, SolverBudget: 30 * time.Second},
				})
				now := time.Unix(0, 0)
				for a := 0; a < 12; a++ {
					if err := m.SubmitLRA(pipelineApp(a), now); err != nil {
						b.Fatalf("submit: %v", err)
					}
				}
				now = now.Add(time.Second)
				stats := m.RunCycle(now)
				if stats.Placed != 12 {
					b.Fatalf("cycle placed %d/12", stats.Placed)
				}
				iters++
				if m.Pipeline.DeadlineHits() > 0 {
					hits++
				}
			}
		})
		res := benchResult{
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if iters > 0 {
			res.DeadlineHitRate = float64(hits) / float64(iters)
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best
}

func writeJSON(dir, name string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	cpuList := flag.String("cpu", "1,4,8", "comma-separated CPU counts to benchmark at")
	count := flag.Int("count", 3, "runs per configuration; the best (lowest ns/op) is kept")
	gate := flag.Bool("gate", false, "enforce the parallel speedup gate on the pipeline fixture")
	minSpeedup := flag.Float64("speedup", 2.0, "required speedup of the highest CPU count over 1 CPU")
	maxAllocs := flag.Int64("maxallocs", 0, "fail if any ILP solve exceeds this many allocs/op (0 = off)")
	outDir := flag.String("out", ".", "directory for BENCH_*.json artifacts")
	flag.Parse()

	cpus, err := parseCPUs(*cpuList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	suites := []struct {
		name, file, fixture string
		run                 func(workers, count int) benchResult
	}{
		{"ilp-solve", "BENCH_ilp.json", "correlated 0/1 knapsack, 34 vars, full solve", benchILP},
		{"pipeline-cycle", "BENCH_pipeline.json",
			"64-node grid, 12 anti-affinity LRAs, build + one RunCycle", benchPipeline},
	}

	var pipeline, ilpResults []benchResult
	for _, s := range suites {
		f := benchFile{Benchmark: s.name, Fixture: s.fixture, NumCPU: runtime.NumCPU(), Count: *count}
		for _, cpu := range cpus {
			runtime.GOMAXPROCS(cpu)
			res := s.run(cpu, *count)
			res.CPU = cpu
			f.Results = append(f.Results, res)
			fmt.Printf("%-15s cpu=%d  %12d ns/op  %8d allocs/op  deadline-hit %.2f\n",
				s.name, cpu, res.NsPerOp, res.AllocsPerOp, res.DeadlineHitRate)
		}
		runtime.GOMAXPROCS(prev)
		if err := writeJSON(*outDir, s.file, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if s.name == "pipeline-cycle" {
			pipeline = f.Results
		}
		if s.name == "ilp-solve" {
			ilpResults = f.Results
		}
	}

	// The allocation gate is CPU-count independent: a full solve of the
	// knapsack fixture must not regress in allocs/op, whatever the
	// parallelism. This is the cheap canary for accidental per-node or
	// per-candidate garbage in the solver hot path.
	if *maxAllocs > 0 {
		for _, r := range ilpResults {
			if r.AllocsPerOp > *maxAllocs {
				fmt.Fprintf(os.Stderr, "gate: FAIL — ilp-solve at %d CPUs allocates %d/op, cap is %d\n",
					r.CPU, r.AllocsPerOp, *maxAllocs)
				os.Exit(1)
			}
		}
		fmt.Printf("gate: OK — ilp-solve allocs/op within the %d cap at every CPU count\n", *maxAllocs)
	}

	if *gate {
		hi := cpus[len(cpus)-1]
		if runtime.NumCPU() < hi {
			fmt.Printf("gate: skipped — host has %d CPUs, gate needs %d to be meaningful\n",
				runtime.NumCPU(), hi)
			return
		}
		var base, top int64
		for _, r := range pipeline {
			if r.CPU == 1 {
				base = r.NsPerOp
			}
			if r.CPU == hi {
				top = r.NsPerOp
			}
		}
		if base == 0 || top == 0 {
			fmt.Fprintln(os.Stderr, "gate: -cpu list must include 1 and the gated count")
			os.Exit(2)
		}
		speedup := float64(base) / float64(top)
		if speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "gate: FAIL — pipeline speedup at %d CPUs is %.2fx, need >= %.2fx\n",
				hi, speedup, *minSpeedup)
			os.Exit(1)
		}
		fmt.Printf("gate: OK — pipeline speedup at %d CPUs is %.2fx\n", hi, speedup)
	}
}
