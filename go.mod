module medea

go 1.22
